//! Generic framed record logs: the storage layer under every
//! append-only journal in the workspace.
//!
//! [`crate::wal`] (the simulator's typed event log) and the
//! `elasticflow-serve` gateway's submission log share the same on-disk
//! shape — an 8-byte magic+version header followed by length-prefixed,
//! FNV-1a-64-checksummed frames — and the same crash semantics: a torn
//! final frame is recoverable by truncation, a checksum mismatch is bit
//! rot and surfaces as a typed error. This module owns that shape once,
//! parameterized by a [`LogKind`] naming the magic bytes and the words
//! used in error messages; the typed logs are thin wrappers that add
//! payload (de)serialization.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::PersistError;
use crate::frame::{
    check_header, decode_frame, encode_frame, encode_header, FrameRead, HEADER_LEN,
};

/// Identity of one record-log file format: its magic bytes plus the
/// names used in error messages.
#[derive(Debug, Clone, Copy)]
pub struct LogKind {
    /// The 4 ASCII magic bytes opening the file.
    pub magic: &'static [u8; 4],
    /// The magic rendered as ASCII, for [`PersistError::BadMagic`].
    pub magic_name: &'static str,
    /// Short name used in per-record messages (e.g. `"WAL"`).
    pub record_name: &'static str,
    /// Long name used in whole-file messages (e.g. `"write-ahead log"`).
    pub long_name: &'static str,
}

/// When appended records are forced to stable storage.
///
/// Every policy writes records to the OS immediately (a clean process
/// exit or kill never loses acknowledged records); the policies differ
/// only in how often `fsync` pushes them past the page cache, which is
/// what bounds loss on power failure. Recovery copes with any tail the
/// chosen policy can lose: an incomplete frame is truncated, and the
/// journal is regenerated from the surviving WAL prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never fsync; rely on the OS to write back. Survives process
    /// crashes but not power loss. This is the historical behaviour and
    /// the default.
    #[default]
    Never,
    /// fsync after every record. Strongest durability, slowest.
    PerRecord,
    /// fsync once per appended batch (a single append counts as a batch
    /// of one). Amortizes the sync over group commits.
    PerBatch,
    /// fsync once every `n` records, counted across batches. A crash
    /// can lose up to one interval of acknowledged records to power
    /// failure.
    Interval(u64),
}

/// An open record log positioned for appending.
#[derive(Debug)]
pub struct RecordLog {
    kind: LogKind,
    file: File,
    records: u64,
    policy: FsyncPolicy,
    /// Reused frame-encoding buffer: one allocation serves every append.
    frame_buf: Vec<u8>,
    /// Records appended since the last fsync (drives `Interval`).
    unsynced: u64,
}

impl RecordLog {
    /// Creates (or truncates) the log at `path` and writes a fresh header.
    pub fn create<P: AsRef<Path>>(kind: LogKind, path: P) -> Result<Self, PersistError> {
        let mut file = File::create(path)?;
        file.write_all(&encode_header(kind.magic, crate::frame::PERSIST_VERSION))?;
        file.flush()?;
        Ok(RecordLog {
            kind,
            file,
            records: 0,
            policy: FsyncPolicy::default(),
            frame_buf: Vec::new(),
            unsynced: 0,
        })
    }

    /// Opens an existing log, truncates it to its first `keep` records,
    /// and positions for appending record `keep`.
    ///
    /// The log is fully validated up to the kept prefix; fewer than `keep`
    /// intact records on disk is [`PersistError::Corrupt`] (the snapshot
    /// being resumed from promises they exist).
    pub fn open_truncated<P: AsRef<Path>>(
        kind: LogKind,
        path: P,
        keep: u64,
    ) -> Result<Self, PersistError> {
        let contents = read_log(kind, &path)?;
        if (contents.payloads.len() as u64) < keep {
            return Err(PersistError::Corrupt(format!(
                "{} holds {} records but the snapshot requires {keep}",
                kind.long_name,
                contents.payloads.len()
            )));
        }
        let keep_bytes = contents.record_offsets[keep as usize];
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(keep_bytes)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(RecordLog {
            kind,
            file,
            records: keep,
            policy: FsyncPolicy::default(),
            frame_buf: Vec::new(),
            unsynced: 0,
        })
    }

    /// Appends one payload as a framed record and flushes it to the OS.
    pub fn append_payload(&mut self, payload: &[u8]) -> Result<(), PersistError> {
        self.append_batch([payload])?;
        Ok(())
    }

    /// Group commit: appends every payload as a framed record with one
    /// length/checksum pass into the reused frame buffer, one OS write,
    /// and at most one fsync (per the configured [`FsyncPolicy`]).
    /// Returns the number of records appended.
    ///
    /// A crash mid-write leaves at most one torn frame at the tail —
    /// exactly the failure [`recover_log`] repairs — because frames are
    /// laid out back to back and the OS write is a single contiguous
    /// range.
    pub fn append_batch<I>(&mut self, payloads: I) -> Result<u64, PersistError>
    where
        I: IntoIterator,
        I::Item: AsRef<[u8]>,
    {
        if self.policy == FsyncPolicy::PerRecord {
            // Record-granular durability deliberately defeats group
            // commit: each record is written and synced on its own, so
            // record `i` is stable before record `i + 1` exists.
            let mut appended = 0u64;
            for payload in payloads {
                self.frame_buf.clear();
                encode_frame(&mut self.frame_buf, payload.as_ref());
                self.file.write_all(&self.frame_buf)?;
                self.file.sync_data()?;
                self.records += 1;
                appended += 1;
            }
            self.unsynced = 0;
            return Ok(appended);
        }
        self.frame_buf.clear();
        let mut appended = 0u64;
        for payload in payloads {
            encode_frame(&mut self.frame_buf, payload.as_ref());
            appended += 1;
        }
        if appended == 0 {
            return Ok(0);
        }
        self.file.write_all(&self.frame_buf)?;
        self.file.flush()?;
        self.records += appended;
        self.unsynced += appended;
        let sync_due = match self.policy {
            FsyncPolicy::Never | FsyncPolicy::PerRecord => false,
            FsyncPolicy::PerBatch => true,
            FsyncPolicy::Interval(n) => n > 0 && self.unsynced >= n,
        };
        if sync_due {
            self.sync()?;
        }
        Ok(appended)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Sets when appends are forced to stable storage.
    pub fn set_fsync_policy(&mut self, policy: FsyncPolicy) {
        self.policy = policy;
    }

    /// The configured durability policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Records appended so far (including any kept prefix).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log kind this writer frames records as.
    pub fn kind(&self) -> &LogKind {
        &self.kind
    }
}

/// The decoded contents of a record log: UTF-8 payloads in append order.
#[derive(Debug)]
pub struct LogContents {
    /// Every intact record payload, in append order.
    pub payloads: Vec<String>,
    /// Byte offset where record `i` begins; the final entry is the offset
    /// just past the last intact record (`record_offsets.len() ==
    /// payloads.len() + 1`). Truncating the file to any of these offsets
    /// yields a clean log prefix.
    pub record_offsets: Vec<u64>,
    /// `true` when the log ended in an incomplete frame (crash mid-append).
    pub torn: bool,
}

impl LogContents {
    /// Byte length of the clean prefix (header + intact records).
    pub fn clean_len(&self) -> u64 {
        *self.record_offsets.last().unwrap_or(&(HEADER_LEN as u64))
    }
}

/// Reads and validates a record log.
///
/// A torn final frame stops the scan and sets [`LogContents::torn`]; a
/// complete frame with a bad checksum or a non-UTF-8 payload is a typed
/// error.
pub fn read_log<P: AsRef<Path>>(kind: LogKind, path: P) -> Result<LogContents, PersistError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    check_header(&bytes, kind.magic, kind.magic_name)?;
    let mut payloads = Vec::new();
    let mut record_offsets = vec![HEADER_LEN as u64];
    let mut offset = HEADER_LEN;
    let mut torn = false;
    loop {
        if offset == bytes.len() {
            break;
        }
        match decode_frame(&bytes, offset)? {
            FrameRead::Complete { payload, next } => {
                let text = std::str::from_utf8(payload).map_err(|_| {
                    PersistError::Corrupt(format!(
                        "{} record at offset {offset} is not valid UTF-8",
                        kind.record_name
                    ))
                })?;
                payloads.push(text.to_owned());
                record_offsets.push(next as u64);
                offset = next;
            }
            FrameRead::Torn => {
                torn = true;
                break;
            }
        }
    }
    Ok(LogContents {
        payloads,
        record_offsets,
        torn,
    })
}

/// Reads the log and, if it ends in a torn frame, truncates the file back
/// to its clean prefix. Returns the (now guaranteed clean) contents.
pub fn recover_log<P: AsRef<Path>>(kind: LogKind, path: P) -> Result<LogContents, PersistError> {
    let mut contents = read_log(kind, &path)?;
    if contents.torn {
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(contents.clean_len())?;
        contents.torn = false;
    }
    Ok(contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_KIND: LogKind = LogKind {
        magic: b"EFWL",
        magic_name: "EFWL",
        record_name: "WAL",
        long_name: "write-ahead log",
    };

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ef-records-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn append_then_read_round_trips_payloads() {
        let path = tmp("roundtrip.log");
        let mut log = RecordLog::create(TEST_KIND, &path).expect("create");
        log.append_payload(b"one").expect("append");
        log.append_payload(b"two").expect("append");
        assert_eq!(log.records(), 2);
        let contents = read_log(TEST_KIND, &path).expect("read");
        assert_eq!(contents.payloads, vec!["one".to_owned(), "two".to_owned()]);
        assert!(!contents.torn);
    }

    #[test]
    fn open_truncated_keeps_exactly_the_prefix() {
        let path = tmp("truncate.log");
        let mut log = RecordLog::create(TEST_KIND, &path).expect("create");
        for i in 0..5 {
            log.append_payload(format!("r{i}").as_bytes())
                .expect("append");
        }
        drop(log);
        let mut log = RecordLog::open_truncated(TEST_KIND, &path, 3).expect("open");
        assert_eq!(log.records(), 3);
        log.append_payload(b"r3'").expect("append");
        let contents = read_log(TEST_KIND, &path).expect("read");
        assert_eq!(contents.payloads, vec!["r0", "r1", "r2", "r3'"]);
    }

    #[test]
    fn keeping_more_than_exists_is_corrupt() {
        let path = tmp("overkeep.log");
        let mut log = RecordLog::create(TEST_KIND, &path).expect("create");
        log.append_payload(b"only").expect("append");
        drop(log);
        match RecordLog::open_truncated(TEST_KIND, &path, 2) {
            Err(PersistError::Corrupt(msg)) => {
                assert!(
                    msg.contains("holds 1 records but the snapshot requires 2"),
                    "{msg}"
                );
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn append_batch_is_byte_identical_to_sequential_appends() {
        let batched = tmp("batch-eq-a.log");
        let sequential = tmp("batch-eq-b.log");
        let payloads: Vec<String> = (0..17).map(|i| format!("record-{i}")).collect();
        let mut a = RecordLog::create(TEST_KIND, &batched).expect("create");
        assert_eq!(a.append_batch(payloads.iter()).expect("batch"), 17);
        assert_eq!(a.records(), 17);
        let mut b = RecordLog::create(TEST_KIND, &sequential).expect("create");
        for p in &payloads {
            b.append_payload(p.as_bytes()).expect("append");
        }
        drop((a, b));
        assert_eq!(
            std::fs::read(&batched).expect("read a"),
            std::fs::read(&sequential).expect("read b"),
            "group commit must not change the on-disk bytes"
        );
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let path = tmp("batch-empty.log");
        let mut log = RecordLog::create(TEST_KIND, &path).expect("create");
        let before = std::fs::metadata(&path).expect("meta").len();
        assert_eq!(log.append_batch(std::iter::empty::<&[u8]>()).unwrap(), 0);
        assert_eq!(log.records(), 0);
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), before);
    }

    #[test]
    fn fsync_policies_preserve_contents() {
        for (name, policy) in [
            ("never", FsyncPolicy::Never),
            ("record", FsyncPolicy::PerRecord),
            ("batch", FsyncPolicy::PerBatch),
            ("interval", FsyncPolicy::Interval(3)),
        ] {
            let path = tmp(&format!("fsync-{name}.log"));
            let mut log = RecordLog::create(TEST_KIND, &path).expect("create");
            log.set_fsync_policy(policy);
            assert_eq!(log.fsync_policy(), policy);
            log.append_batch(["a", "b"]).expect("batch");
            log.append_payload(b"c").expect("append");
            log.sync().expect("explicit sync");
            let contents = read_log(TEST_KIND, &path).expect("read");
            assert_eq!(contents.payloads, vec!["a", "b", "c"], "policy {name}");
        }
    }

    #[test]
    fn torn_tail_inside_a_batched_run_recovers_the_clean_prefix() {
        let path = tmp("batch-torn.log");
        let mut log = RecordLog::create(TEST_KIND, &path).expect("create");
        log.append_batch(["first", "second", "third"])
            .expect("batch");
        drop(log);
        let clean = std::fs::read(&path).expect("read bytes");
        let contents = read_log(TEST_KIND, &path).expect("read");
        // Cut the file mid-way through the last record of the batch: the
        // crash point a power failure during the single group-commit
        // write would leave.
        let cut = contents.record_offsets[2] + 5;
        let mut torn_bytes = clean.clone();
        torn_bytes.truncate(cut as usize);
        std::fs::write(&path, &torn_bytes).expect("write torn");
        let recovered = recover_log(TEST_KIND, &path).expect("recover");
        assert_eq!(recovered.payloads, vec!["first", "second"]);
        assert!(!recovered.torn);
    }

    #[test]
    fn recover_truncates_a_torn_tail() {
        let path = tmp("torn.log");
        let mut log = RecordLog::create(TEST_KIND, &path).expect("create");
        log.append_payload(b"whole").expect("append");
        drop(log);
        let clean = std::fs::read(&path).expect("read bytes");
        let mut torn_bytes = clean.clone();
        torn_bytes.extend_from_slice(&[7, 0, 0, 0, 1, 2]); // half a frame header
        std::fs::write(&path, &torn_bytes).expect("write torn");
        assert!(read_log(TEST_KIND, &path).expect("read").torn);
        let contents = recover_log(TEST_KIND, &path).expect("recover");
        assert!(!contents.torn);
        assert_eq!(std::fs::read(&path).expect("reread"), clean);
    }
}
