//! Crash-consistent persistence for ElasticFlow simulations.
//!
//! The paper's platform runs as a long-lived service; its scheduler state
//! must survive controller restarts (§5 runs the central scheduler as a
//! Kubernetes deployment). This crate is the reproduction's equivalent
//! for the simulator: periodic full-state **snapshots** plus an
//! append-only **write-ahead event log**, with recovery that resumes a
//! run *bit-identically* — the resumed [`elasticflow_sim::SimReport`]
//! equals the uninterrupted one byte for byte, a property the golden
//! cut-point tests enforce against pre-captured digests.
//!
//! Three layers:
//!
//! * **framing** ([`frame`]) — length-prefixed, FNV-1a-64-checksummed
//!   records behind versioned `EFSN`/`EFWL` headers; torn tails are
//!   recoverable, checksum mismatches are typed errors, never panics;
//! * **storage** ([`wal`], [`store`]) — the append-only log and the
//!   sequenced snapshot files in a [`StateDir`], written atomically via
//!   temp-file + rename;
//! * **harness** ([`checkpoint`], [`PersistSession`]) — a
//!   [`elasticflow_sim::SimController`] that cuts snapshots on a simulated
//!   clock and a [`elasticflow_sim::SimObserver`] that streams events into
//!   the log, pre-wired by [`PersistSession`].
//!
//! # Example
//!
//! ```no_run
//! use elasticflow_cluster::ClusterSpec;
//! use elasticflow_perfmodel::Interconnect;
//! use elasticflow_persist::PersistSession;
//! use elasticflow_sched::EdfScheduler;
//! use elasticflow_sim::{SimConfig, Simulation};
//! use elasticflow_trace::TraceConfig;
//!
//! let spec = ClusterSpec::small_testbed();
//! let trace = TraceConfig::testbed_small(1).generate(&Interconnect::from_spec(&spec));
//! let sim = Simulation::new(spec, SimConfig::default());
//!
//! let mut session = PersistSession::begin("state", 600.0, true).unwrap();
//! let mut policy = EdfScheduler::new();
//! let outcome = match session.snapshot().cloned() {
//!     Some(snap) => {
//!         let (wal, ckpt) = session.parts();
//!         sim.resume_controlled(&trace, &mut policy, &mut [wal], ckpt, &snap).unwrap()
//!     }
//!     None => {
//!         let (wal, ckpt) = session.parts();
//!         sim.run_controlled(&trace, &mut policy, &mut [wal], ckpt)
//!     }
//! };
//! assert!(outcome.completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod error;
pub mod frame;
pub mod records;
mod session;
pub mod store;
pub mod wal;

pub use checkpoint::{CheckpointStats, Checkpointer, WalObserver};
pub use error::PersistError;
pub use frame::PERSIST_VERSION;
pub use records::{FsyncPolicy, LogContents, LogKind, RecordLog};
pub use session::PersistSession;
pub use store::{Recovered, StateDir, StoredSnapshot};
pub use wal::{WalContents, WalWriter};
