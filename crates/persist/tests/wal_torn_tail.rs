//! Crash-artifact recovery tests for the write-ahead log.
//!
//! The headline test simulates a crash at *every possible byte offset*
//! inside the final record: for each truncation length, recovery must
//! neither panic nor replay a partial record — it keeps exactly the
//! records written before the torn one and truncates the file back to a
//! clean prefix.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use elasticflow_persist::wal::{read_wal, recover_wal};
use elasticflow_persist::{PersistError, WalWriter};
use elasticflow_sim::{Event, TraceRecord};
use elasticflow_trace::JobId;

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn temp_path(name: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "elasticflow-persist-test-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn sample_records(n: usize) -> Vec<TraceRecord> {
    (0..n)
        .map(|i| TraceRecord {
            time: 100.0 * i as f64 + 0.5,
            event: if i % 2 == 0 {
                Event::Arrival {
                    job: JobId::new(i as u64),
                }
            } else {
                Event::Completion {
                    job: JobId::new(i as u64),
                }
            },
        })
        .collect()
}

fn write_log(path: &std::path::Path, records: &[TraceRecord]) {
    let mut writer = WalWriter::create(path).expect("create WAL");
    for r in records {
        writer.append(r).expect("append record");
    }
    assert_eq!(writer.records(), records.len() as u64);
}

#[test]
fn truncation_at_every_byte_of_the_final_record_recovers_cleanly() {
    let path = temp_path("events.wal");
    let records = sample_records(4);
    write_log(&path, &records);
    let full = std::fs::read(&path).unwrap();

    // Byte offset where the final record's frame begins.
    let contents = read_wal(&path).unwrap();
    assert!(!contents.torn);
    assert_eq!(contents.records, records);
    let last_start = contents.record_offsets[records.len() - 1] as usize;

    for cut in last_start..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let recovered = recover_wal(&path).unwrap_or_else(|e| {
            panic!("cut at byte {cut}: recovery errored instead of truncating: {e}")
        });
        assert!(
            !recovered.torn,
            "cut at byte {cut}: still torn after recovery"
        );
        assert_eq!(
            recovered.records,
            records[..records.len() - 1],
            "cut at byte {cut}: wrong records survived"
        );
        // The file itself was truncated back to a clean prefix: re-reading
        // finds no torn tail and the same records.
        let reread = read_wal(&path).unwrap();
        assert!(!reread.torn, "cut at byte {cut}: file not truncated");
        assert_eq!(reread.records, records[..records.len() - 1]);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            recovered.clean_len(),
            "cut at byte {cut}: file length does not match the clean prefix"
        );
    }
}

#[test]
fn corrupted_checksum_is_a_typed_error_not_a_panic() {
    let path = temp_path("events.wal");
    let records = sample_records(3);
    write_log(&path, &records);
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip one byte in the middle record's payload (past header + frame 0).
    let contents = read_wal(&path).unwrap();
    let mid = contents.record_offsets[1] as usize + 14;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    match read_wal(&path) {
        Err(PersistError::ChecksumMismatch { offset, .. }) => {
            assert_eq!(offset, contents.record_offsets[1]);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    // Recovery must not silently truncate bit rot either.
    assert!(matches!(
        recover_wal(&path),
        Err(PersistError::ChecksumMismatch { .. })
    ));
}

#[test]
fn wrong_magic_and_unknown_version_are_typed_errors() {
    let path = temp_path("events.wal");
    write_log(&path, &sample_records(1));
    let mut bytes = std::fs::read(&path).unwrap();

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    std::fs::write(&path, &wrong_magic).unwrap();
    assert!(matches!(
        read_wal(&path),
        Err(PersistError::BadMagic { expected: "EFWL" })
    ));

    bytes[4] = 0xff; // version little-endian low byte -> 255
    std::fs::write(&path, &bytes).unwrap();
    match read_wal(&path) {
        Err(PersistError::UnknownVersion { found, supported }) => {
            assert_eq!(found, 255);
            assert_eq!(supported, elasticflow_persist::PERSIST_VERSION);
        }
        other => panic!("expected UnknownVersion, got {other:?}"),
    }
}

#[test]
fn open_truncated_rolls_the_log_back_and_appends_from_there() {
    let path = temp_path("events.wal");
    let records = sample_records(5);
    write_log(&path, &records);

    // Roll back to 2 records, append a different tail.
    let mut writer = WalWriter::open_truncated(&path, 2).unwrap();
    assert_eq!(writer.records(), 2);
    let replacement = TraceRecord {
        time: 999.0,
        event: Event::SlotBoundary,
    };
    writer.append(&replacement).unwrap();
    drop(writer);

    let contents = read_wal(&path).unwrap();
    assert!(!contents.torn);
    assert_eq!(contents.records.len(), 3);
    assert_eq!(contents.records[..2], records[..2]);
    assert_eq!(contents.records[2], replacement);

    // Asking for more records than exist is a typed error.
    assert!(matches!(
        WalWriter::open_truncated(&path, 10),
        Err(PersistError::Corrupt(_))
    ));
}

#[test]
fn interrupted_then_resumed_log_is_byte_identical_to_uninterrupted() {
    let uninterrupted = temp_path("full.wal");
    let records = sample_records(6);
    write_log(&uninterrupted, &records);

    // Crash after 3 records with a torn half-written 4th.
    let crashed = temp_path("crashed.wal");
    write_log(&crashed, &records[..4]);
    let bytes = std::fs::read(&crashed).unwrap();
    std::fs::write(&crashed, &bytes[..bytes.len() - 5]).unwrap();

    // Recovery truncates the torn tail; the resumed writer re-appends the
    // tail the lost run would have written.
    let recovered = recover_wal(&crashed).unwrap();
    assert_eq!(recovered.records.len(), 3);
    let mut writer = WalWriter::open_truncated(&crashed, 3).unwrap();
    for r in &records[3..] {
        writer.append(r).unwrap();
    }
    drop(writer);

    assert_eq!(
        std::fs::read(&crashed).unwrap(),
        std::fs::read(&uninterrupted).unwrap(),
        "resumed log differs from the uninterrupted one"
    );
}
