//! Snapshot-file format and state-directory recovery tests.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use elasticflow_cluster::ClusterSpec;
use elasticflow_perfmodel::Interconnect;
use elasticflow_persist::store::{decode_snapshot, encode_snapshot};
use elasticflow_persist::{PersistError, PersistSession, StateDir, StoredSnapshot};
use elasticflow_sched::EdfScheduler;
use elasticflow_sim::{RunDirective, SimConfig, SimController, SimSnapshot, Simulation};
use elasticflow_trace::{Trace, TraceConfig};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "elasticflow-persist-store-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spec() -> ClusterSpec {
    ClusterSpec::with_servers(2, 8)
}

fn trace() -> Trace {
    TraceConfig::testbed_small(11).generate(&Interconnect::from_spec(&spec()))
}

/// Captures one snapshot mid-run via the engine's controller seam.
fn capture_snapshot(at_round: u64) -> SimSnapshot {
    struct Capture {
        at: u64,
        snap: Option<SimSnapshot>,
    }
    impl SimController for Capture {
        fn directive(&mut self, _now: f64, round: u64) -> RunDirective {
            if round == self.at {
                RunDirective::CheckpointThenStop
            } else {
                RunDirective::Continue
            }
        }
        fn on_snapshot(&mut self, snapshot: SimSnapshot) {
            self.snap = Some(snapshot);
        }
    }
    let mut capture = Capture {
        at: at_round,
        snap: None,
    };
    let sim = Simulation::new(spec(), SimConfig::default());
    let _ = sim.run_controlled(&trace(), &mut EdfScheduler::new(), &mut [], &mut capture);
    capture.snap.expect("snapshot captured")
}

fn stored(at_round: u64, wal_records: u64) -> StoredSnapshot {
    StoredSnapshot {
        version: elasticflow_persist::PERSIST_VERSION,
        wal_records,
        sim: capture_snapshot(at_round),
    }
}

#[test]
fn snapshot_encoding_is_byte_stable_and_round_trips() {
    let s = stored(4, 17);
    let bytes = encode_snapshot(&s).unwrap();
    let back = decode_snapshot(&bytes).unwrap();
    assert_eq!(s, back);
    // Byte-stable: re-encoding the decoded value yields identical bytes.
    assert_eq!(bytes, encode_snapshot(&back).unwrap());
}

#[test]
fn unknown_payload_version_is_a_typed_error() {
    let mut s = stored(3, 0);
    s.version = elasticflow_persist::PERSIST_VERSION + 7;
    let bytes = encode_snapshot(&s).unwrap();
    match decode_snapshot(&bytes) {
        Err(PersistError::UnknownVersion { found, supported }) => {
            assert_eq!(found, elasticflow_persist::PERSIST_VERSION + 7);
            assert_eq!(supported, elasticflow_persist::PERSIST_VERSION);
        }
        other => panic!("expected UnknownVersion, got {other:?}"),
    }
}

#[test]
fn truncated_and_corrupted_snapshot_files_are_typed_errors() {
    let bytes = encode_snapshot(&stored(3, 0)).unwrap();
    // Every truncation is Corrupt or BadMagic/Torn — never a panic.
    for cut in 0..bytes.len() {
        match decode_snapshot(&bytes[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("cut at {cut}: truncated snapshot decoded successfully"),
        }
    }
    // Payload bit-flip: checksum mismatch.
    let mut flipped = bytes.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x10;
    assert!(matches!(
        decode_snapshot(&flipped),
        Err(PersistError::ChecksumMismatch { .. })
    ));
}

#[test]
fn latest_valid_snapshot_skips_corrupt_newer_files() {
    let dir = StateDir::open(temp_dir()).unwrap();
    let good = stored(4, 2);
    let (seq1, _) = dir.write_next_snapshot(&good).unwrap();
    let newer = stored(6, 5);
    let (seq2, _) = dir.write_next_snapshot(&newer).unwrap();
    assert_eq!((seq1, seq2), (1, 2));

    // Corrupt the newest file's tail.
    let path = dir.snapshot_path(seq2);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let (seq, loaded, skipped) = dir.latest_valid_snapshot().unwrap().expect("one valid");
    assert_eq!(seq, seq1);
    assert_eq!(loaded, good);
    assert_eq!(skipped.len(), 1);
    assert_eq!(skipped[0].0, seq2);
    assert!(
        skipped[0].1.contains("checksum mismatch"),
        "{}",
        skipped[0].1
    );
}

#[test]
fn recover_on_empty_dir_is_none_and_fresh_session_starts_clean() {
    let root = temp_dir();
    let dir = StateDir::open(&root).unwrap();
    assert!(dir.recover().unwrap().is_none());

    let session = PersistSession::begin(&root, 600.0, true).unwrap();
    assert!(session.snapshot().is_none(), "nothing to resume from");
}

#[test]
fn session_checkpoints_and_resumes_to_an_identical_report() {
    let root = temp_dir();
    let sim = Simulation::new(spec(), SimConfig::default());
    let tr = trace();
    let baseline = sim.run(&tr, &mut EdfScheduler::new());

    // Run with aggressive checkpointing and a mid-run kill.
    let mut session = PersistSession::begin(&root, 300.0, false)
        .unwrap()
        .kill_at_round(10);
    {
        let (wal, ckpt) = session.parts();
        let outcome = sim.run_controlled(&tr, &mut EdfScheduler::new(), &mut [wal], ckpt);
        assert!(!outcome.completed, "kill round did not fire");
    }
    let stats = session.stats();
    assert!(
        stats.checkpoints > 0,
        "no checkpoint was cut before the kill"
    );
    assert_eq!(stats.failures, 0);
    assert!(stats.wal_records > 0);
    assert!(session.first_error().is_none());
    drop(session);

    // Resume in a "new process": recover and run to completion.
    let mut session = PersistSession::begin(&root, 300.0, true).unwrap();
    let snap = session
        .snapshot()
        .cloned()
        .expect("recovery found a snapshot");
    let (wal, ckpt) = session.parts();
    let outcome = sim
        .resume_controlled(&tr, &mut EdfScheduler::new(), &mut [wal], ckpt, &snap)
        .unwrap();
    assert!(outcome.completed);
    assert_eq!(
        baseline, outcome.report,
        "resumed run diverged from the uninterrupted baseline"
    );
}
