//! Declarative cluster descriptions and the presets used in the paper.

use serde::{Deserialize, Serialize};

use crate::{Level, Topology};

/// A declarative description of a GPU cluster, convertible to a [`Topology`].
///
/// Bandwidth numbers are *effective all-reduce* bandwidths calibrated so that
/// the analytic performance model in `elasticflow-perfmodel` reproduces the
/// shapes the paper reports (Fig. 2): e.g. intra-server placements of
/// ResNet50 roughly 2.2x faster than eight-way spreads, VGG16 at 8 GPUs about
/// 76 % of linear scaling.
///
/// # Example
///
/// ```
/// use elasticflow_cluster::ClusterSpec;
///
/// let spec = ClusterSpec::with_servers(4, 8);
/// let topo = spec.build_topology();
/// assert_eq!(topo.num_gpus(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of servers (must be a power of two for buddy alignment).
    pub servers: u32,
    /// GPUs per server (must be a power of two).
    pub gpus_per_server: u32,
    /// GPUs sharing one PCIe switch / NVLink island.
    pub gpus_per_switch: u32,
    /// Effective all-reduce bandwidth within a switch, bytes/s.
    pub intra_switch_bw: f64,
    /// Effective all-reduce bandwidth across sockets within a server, bytes/s.
    pub intra_server_bw: f64,
    /// Effective all-reduce bandwidth across servers within a rack, bytes/s.
    pub network_bw: f64,
    /// Servers per rack (a cluster larger than one rack adds a core level).
    pub servers_per_rack: u32,
    /// Effective all-reduce bandwidth across racks, bytes/s.
    pub core_bw: f64,
}

impl ClusterSpec {
    /// The paper's 128-GPU testbed: 16 servers x 8 A100 GPUs, HDR InfiniBand.
    pub fn paper_testbed() -> Self {
        ClusterSpec::with_servers(16, 8)
    }

    /// The small testbed used for the Pollux comparison (Fig. 6a):
    /// 4 servers x 8 GPUs.
    pub fn small_testbed() -> Self {
        ClusterSpec::with_servers(4, 8)
    }

    /// A cluster of `servers` x `gpus_per_server` with the calibrated default
    /// interconnect profile.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or not a power of two.
    pub fn with_servers(servers: u32, gpus_per_server: u32) -> Self {
        assert!(
            servers.is_power_of_two(),
            "server count must be a power of two, got {servers}"
        );
        assert!(
            gpus_per_server.is_power_of_two(),
            "gpus per server must be a power of two, got {gpus_per_server}"
        );
        ClusterSpec {
            servers,
            gpus_per_server,
            gpus_per_switch: gpus_per_server.min(4),
            // Calibrated effective bandwidths; see crate docs of
            // elasticflow-perfmodel for the calibration targets.
            intra_switch_bw: 32.0e9,
            intra_server_bw: 28.0e9,
            network_bw: 2.6e9,
            servers_per_rack: 32,
            core_bw: 2.2e9,
        }
    }

    /// Total number of GPUs in the described cluster.
    pub fn total_gpus(&self) -> u32 {
        self.servers * self.gpus_per_server
    }

    /// Materializes the topology tree for this spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec is internally inconsistent (e.g. `gpus_per_switch`
    /// does not divide `gpus_per_server`).
    pub fn build_topology(&self) -> Topology {
        assert!(
            self.gpus_per_server.is_multiple_of(self.gpus_per_switch),
            "gpus_per_switch must divide gpus_per_server"
        );
        let mut levels = Vec::new();
        levels.push(Level::new(
            "pcie",
            self.gpus_per_switch as usize,
            self.intra_switch_bw,
        ));
        let sockets = (self.gpus_per_server / self.gpus_per_switch) as usize;
        if sockets > 1 {
            levels.push(Level::new("qpi", sockets, self.intra_server_bw));
        }
        let racks = self.servers.div_ceil(self.servers_per_rack);
        let servers_in_rack = self.servers.min(self.servers_per_rack) as usize;
        if servers_in_rack > 1 || racks > 1 {
            levels.push(Level::new("ib", servers_in_rack.max(1), self.network_bw));
        }
        if racks > 1 {
            assert!(
                racks.is_power_of_two(),
                "rack count must be a power of two, got {racks}"
            );
            levels.push(Level::new("core", racks as usize, self.core_bw));
        }
        Topology::new(levels)
    }
}

impl Default for ClusterSpec {
    /// The paper-testbed preset (16 x 8 = 128 GPUs).
    fn default() -> Self {
        ClusterSpec::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let spec = ClusterSpec::paper_testbed();
        assert_eq!(spec.total_gpus(), 128);
        let topo = spec.build_topology();
        assert_eq!(topo.num_gpus(), 128);
        assert_eq!(topo.num_servers(), 16);
    }

    #[test]
    fn single_server_cluster() {
        let spec = ClusterSpec::with_servers(1, 8);
        let topo = spec.build_topology();
        assert_eq!(topo.num_gpus(), 8);
        assert_eq!(topo.num_servers(), 1);
    }

    #[test]
    fn multi_rack_cluster() {
        let spec = ClusterSpec::with_servers(64, 8);
        let topo = spec.build_topology();
        assert_eq!(topo.num_gpus(), 512);
        // 64 servers / 32 per rack = 2 racks -> extra core level.
        assert_eq!(topo.levels().last().unwrap().name(), "core");
    }

    #[test]
    fn bandwidth_ordering_intra_beats_network() {
        let topo = ClusterSpec::paper_testbed().build_topology();
        let levels = topo.levels();
        let first = levels.first().unwrap().bandwidth_bytes_per_sec();
        let last = levels.last().unwrap().bandwidth_bytes_per_sec();
        assert!(first > last);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_servers() {
        ClusterSpec::with_servers(3, 8);
    }

    #[test]
    fn serde_roundtrip() {
        let spec = ClusterSpec::small_testbed();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
