//! GPU cluster substrate for ElasticFlow: hierarchical topology, buddy
//! allocation, and topology-aware job placement.
//!
//! The ElasticFlow paper (§4.3) organizes GPUs in a multi-layer hierarchical
//! tree (Fig. 5): GPUs hang off PCIe switches, PCIe switches off CPU sockets,
//! sockets form servers, servers form racks. Links higher in the tree are
//! slower, so a job placed inside a small subtree communicates faster than a
//! job spread across servers.
//!
//! This crate provides:
//!
//! * [`Topology`] — the hierarchical tree with per-level bandwidths;
//! * [`BuddyAllocator`] — a power-of-two buddy allocator over the leaf GPUs
//!   whose blocks are, by construction, aligned with topology subtrees;
//! * [`Placement`] — the concrete set of GPUs given to a job plus the derived
//!   bottleneck communication level;
//! * [`ClusterState`] — allocation bookkeeping with best-fit placement and
//!   migration-based defragmentation (paper §4.3, "Defragmentation with buddy
//!   allocation").
//!
//! # Example
//!
//! ```
//! use elasticflow_cluster::{ClusterSpec, ClusterState};
//!
//! // The paper's testbed: 16 servers x 8 GPUs.
//! let spec = ClusterSpec::paper_testbed();
//! let mut cluster = ClusterState::new(spec.build_topology());
//! let placement = cluster.allocate(1, 8).expect("128 idle GPUs");
//! assert_eq!(placement.num_gpus(), 8);
//! // Eight GPUs fit inside one server, so no network hop is crossed.
//! assert!(placement.highest_level() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buddy;
mod error;
mod ids;
pub mod num;
mod placement;
mod spec;
mod state;
mod table;
mod topology;

pub use buddy::{Block, BuddyAllocator};
pub use error::ClusterError;
pub use ids::{GpuId, ServerId};
pub use placement::{Placement, PlacementShape};
pub use spec::ClusterSpec;
pub use state::{ClusterState, Migration};
pub use topology::{Level, Topology};
