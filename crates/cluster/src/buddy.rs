//! Power-of-two buddy allocation over the GPU leaves.
//!
//! Because the topology tree is itself a hierarchy of power-of-two groups,
//! every aligned buddy block corresponds to a topology subtree: allocating a
//! block of 2^k GPUs automatically gives a job the tightest subtree that can
//! host it. Together with job migration this eliminates fragmentation (paper
//! §4.3): whenever at least 2^k GPUs are idle, a 2^k block can be produced.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::{ClusterError, GpuId};

/// An aligned, power-of-two block of GPUs handed out by the buddy allocator.
///
/// # Example
///
/// ```
/// use elasticflow_cluster::BuddyAllocator;
///
/// let mut buddy = BuddyAllocator::new(16);
/// let block = buddy.allocate(4).unwrap();
/// assert_eq!(block.size(), 4);
/// assert_eq!(block.offset() % 4, 0); // blocks are aligned
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Block {
    order: u32,
    offset: u32,
}

impl Block {
    /// Creates a block covering GPUs `[offset, offset + 2^order)`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not aligned to the block size.
    pub fn new(order: u32, offset: u32) -> Self {
        let size = 1u32 << order;
        assert!(
            offset.is_multiple_of(size),
            "block offset {offset} not aligned to {size}"
        );
        Block { order, offset }
    }

    /// log2 of the block size.
    pub fn order(self) -> u32 {
        self.order
    }

    /// First GPU index covered by the block.
    pub fn offset(self) -> u32 {
        self.offset
    }

    /// Number of GPUs in the block (`2^order`).
    pub fn size(self) -> u32 {
        1 << self.order
    }

    /// The GPUs covered by this block, in ascending order.
    pub fn gpus(self) -> Vec<GpuId> {
        (self.offset..self.offset + self.size())
            .map(GpuId::new)
            .collect()
    }

    /// The sibling block that this block merges with.
    fn buddy(self) -> Block {
        Block {
            order: self.order,
            offset: self.offset ^ self.size(),
        }
    }

    /// `true` when `gpu` lies inside this block.
    pub fn contains(self, gpu: GpuId) -> bool {
        gpu.index() >= self.offset && gpu.index() < self.offset + self.size()
    }
}

/// A buddy allocator over `capacity` GPUs (`capacity` must be a power of two).
///
/// Free blocks at each order are kept in a [`BTreeSet`] so allocation is
/// deterministic: the lowest-offset candidate of the *smallest sufficient
/// order* is always chosen, which is exactly the Best-Fit rule of the paper
/// (§4.3) — the subtree whose idle GPU count is closest to the request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuddyAllocator {
    capacity: u32,
    max_order: u32,
    /// `free[k]` holds the offsets of free blocks of order `k`.
    free: Vec<BTreeSet<u32>>,
    idle: u32,
}

impl BuddyAllocator {
    /// Creates an allocator over `capacity` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or not a power of two.
    pub fn new(capacity: u32) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "buddy capacity must be a power of two, got {capacity}"
        );
        let max_order = capacity.trailing_zeros();
        let mut free = vec![BTreeSet::new(); (max_order + 1) as usize];
        free[max_order as usize].insert(0);
        BuddyAllocator {
            capacity,
            max_order,
            free,
            idle: capacity,
        }
    }

    /// Total capacity in GPUs.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of currently idle GPUs.
    pub fn idle_gpus(&self) -> u32 {
        self.idle
    }

    /// Allocates an aligned block of exactly `size` GPUs (power of two).
    ///
    /// # Errors
    ///
    /// * [`ClusterError::NotPowerOfTwo`] if `size` is not a power of two;
    /// * [`ClusterError::ExceedsCapacity`] if `size > capacity`;
    /// * [`ClusterError::Insufficient`] if no free block of sufficient order
    ///   exists (the cluster may still have `>= size` idle GPUs scattered —
    ///   that is fragmentation, resolved by migration at a higher layer).
    pub fn allocate(&mut self, size: u32) -> Result<Block, ClusterError> {
        if size == 0 || !size.is_power_of_two() {
            return Err(ClusterError::NotPowerOfTwo { requested: size });
        }
        if size > self.capacity {
            return Err(ClusterError::ExceedsCapacity {
                requested: size,
                capacity: self.capacity,
            });
        }
        let order = size.trailing_zeros();
        // Best fit: smallest order with a free block.
        let (found, offset) = (order..=self.max_order)
            .find_map(|k| {
                let &offset = self.free[k as usize].iter().next()?;
                Some((k, offset))
            })
            .ok_or(ClusterError::Insufficient {
                requested: size,
                idle: self.idle,
            })?;
        self.free[found as usize].remove(&offset);
        // Split down to the requested order, freeing the upper halves.
        let mut k = found;
        while k > order {
            k -= 1;
            let half = 1u32 << k;
            self.free[k as usize].insert(offset + half);
        }
        // Keep the lower half at each split (offset unchanged).
        let block = Block::new(order, offset);
        self.idle -= size;
        Ok(block)
    }

    /// Returns a block to the allocator, merging buddies eagerly.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the block overlaps a free block — i.e. it
    /// was not previously allocated from this allocator.
    pub fn free(&mut self, block: Block) {
        let mut current = block;
        self.idle += block.size();
        debug_assert!(self.idle <= self.capacity, "double free detected");
        while current.order() < self.max_order {
            let buddy = current.buddy();
            if self.free[current.order() as usize].remove(&buddy.offset()) {
                current = Block::new(current.order() + 1, current.offset().min(buddy.offset()));
            } else {
                break;
            }
        }
        let inserted = self.free[current.order() as usize].insert(current.offset());
        debug_assert!(inserted, "double free of block {current:?}");
    }

    /// Allocates the *specific* aligned block `want`, splitting free
    /// ancestors as needed. Used by defragmentation to reserve a victim
    /// region or to re-place blocks at their current positions.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Insufficient`] if any part of the block is already
    /// allocated; [`ClusterError::ExceedsCapacity`] if it lies outside the
    /// cluster.
    pub fn allocate_at(&mut self, want: Block) -> Result<(), ClusterError> {
        if want.offset() + want.size() > self.capacity {
            return Err(ClusterError::ExceedsCapacity {
                requested: want.size(),
                capacity: self.capacity,
            });
        }
        // Find the free ancestor (or exact block) containing `want`.
        let mut found: Option<Block> = None;
        for k in want.order()..=self.max_order {
            let size = 1u32 << k;
            let candidate_offset = want.offset() & !(size - 1);
            if self.free[k as usize].contains(&candidate_offset) {
                found = Some(Block::new(k, candidate_offset));
                break;
            }
        }
        let ancestor = found.ok_or(ClusterError::Insufficient {
            requested: want.size(),
            idle: self.idle,
        })?;
        self.free[ancestor.order() as usize].remove(&ancestor.offset());
        // Split the ancestor down toward `want`, freeing the siblings.
        let mut current = ancestor;
        while current.order() > want.order() {
            let child_order = current.order() - 1;
            let half = 1u32 << child_order;
            let (keep_off, free_off) = if want.offset() & half == 0 {
                (current.offset(), current.offset() + half)
            } else {
                (current.offset() + half, current.offset())
            };
            self.free[child_order as usize].insert(free_off);
            current = Block::new(child_order, keep_off);
        }
        debug_assert_eq!(current, want);
        self.idle -= want.size();
        Ok(())
    }

    /// `true` when a block of `size` GPUs can be allocated right now without
    /// migration.
    pub fn can_allocate(&self, size: u32) -> bool {
        if size == 0 || !size.is_power_of_two() || size > self.capacity {
            return false;
        }
        let order = size.trailing_zeros();
        (order..=self.max_order).any(|k| !self.free[k as usize].is_empty())
    }

    /// A snapshot of the free blocks, ascending by offset.
    pub fn free_blocks(&self) -> Vec<Block> {
        let mut blocks: Vec<Block> = self
            .free
            .iter()
            .enumerate()
            .flat_map(|(k, offsets)| offsets.iter().map(move |&off| Block::new(k as u32, off)))
            .collect();
        blocks.sort_by_key(|b| b.offset());
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_whole_cluster() {
        let mut b = BuddyAllocator::new(16);
        let block = b.allocate(16).unwrap();
        assert_eq!(block.size(), 16);
        assert_eq!(b.idle_gpus(), 0);
        assert!(b.allocate(1).is_err());
        b.free(block);
        assert_eq!(b.idle_gpus(), 16);
    }

    #[test]
    fn split_and_merge() {
        let mut b = BuddyAllocator::new(16);
        let x = b.allocate(4).unwrap();
        let y = b.allocate(4).unwrap();
        assert_ne!(x.offset(), y.offset());
        assert_eq!(b.idle_gpus(), 8);
        b.free(x);
        b.free(y);
        // Everything must have merged back into one 16-block.
        assert_eq!(b.free_blocks(), vec![Block::new(4, 0)]);
    }

    #[test]
    fn best_fit_prefers_smallest_hole() {
        let mut b = BuddyAllocator::new(16);
        let a = b.allocate(8).unwrap(); // occupies [0, 8)
        let c = b.allocate(2).unwrap(); // splits [8, 16): takes [8, 10)
        assert_eq!(c.offset(), 8);
        // Free the 8-block; holes are now [0,8), [10,12), [12,16).
        b.free(a);
        // A 2-GPU request should take the *smallest* sufficient hole [10,12),
        // not carve up the 8-block.
        let d = b.allocate(2).unwrap();
        assert_eq!(d.offset(), 10);
    }

    #[test]
    fn rejects_bad_sizes() {
        let mut b = BuddyAllocator::new(8);
        assert_eq!(
            b.allocate(3),
            Err(ClusterError::NotPowerOfTwo { requested: 3 })
        );
        assert_eq!(
            b.allocate(0),
            Err(ClusterError::NotPowerOfTwo { requested: 0 })
        );
        assert_eq!(
            b.allocate(16),
            Err(ClusterError::ExceedsCapacity {
                requested: 16,
                capacity: 8
            })
        );
    }

    #[test]
    fn random_schedule_keeps_invariants() {
        // Exercise a long pseudo-random alloc/free schedule and check the
        // accounting invariants: idle count matches held blocks, held blocks
        // never overlap, and frees always merge back at the end.
        let mut b = BuddyAllocator::new(64);
        let mut held: Vec<Block> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let r = next();
            if r % 3 == 0 && !held.is_empty() {
                let idx = (r / 3) as usize % held.len();
                let blk = held.swap_remove(idx);
                b.free(blk);
            } else {
                let size = 1u32 << (r % 4); // 1..8
                if b.can_allocate(size) {
                    held.push(b.allocate(size).expect("can_allocate said yes"));
                }
            }
            let held_gpus: u32 = held.iter().map(|blk| blk.size()).sum();
            assert_eq!(b.idle_gpus(), 64 - held_gpus);
            for (i, x) in held.iter().enumerate() {
                for y in &held[i + 1..] {
                    let disjoint =
                        x.offset() + x.size() <= y.offset() || y.offset() + y.size() <= x.offset();
                    assert!(disjoint, "overlapping blocks {x:?} {y:?}");
                }
            }
        }
        for blk in held.drain(..) {
            b.free(blk);
        }
        assert_eq!(b.free_blocks(), vec![Block::new(6, 0)]);
    }

    #[test]
    fn buddy_is_computed_by_xor() {
        let blk = Block::new(2, 4);
        assert_eq!(blk.buddy().offset(), 0);
        let blk = Block::new(2, 0);
        assert_eq!(blk.buddy().offset(), 4);
    }

    #[test]
    fn contains_checks_bounds() {
        let blk = Block::new(3, 8);
        assert!(blk.contains(GpuId::new(8)));
        assert!(blk.contains(GpuId::new(15)));
        assert!(!blk.contains(GpuId::new(16)));
        assert!(!blk.contains(GpuId::new(7)));
    }

    #[test]
    fn can_allocate_is_consistent_with_allocate() {
        let mut b = BuddyAllocator::new(8);
        let _x = b.allocate(4).unwrap();
        let _y = b.allocate(2).unwrap();
        assert!(b.can_allocate(2));
        assert!(!b.can_allocate(4));
        assert!(!b.can_allocate(3));
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_block_panics() {
        let _ = Block::new(2, 2);
    }
}
