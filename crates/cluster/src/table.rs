//! Dense, sorted owner → block table backing [`crate::ClusterState`].
//!
//! The allocation table used to be a `BTreeMap<u64, Block>`. At mega-cluster
//! scale (tens of thousands of concurrent owners) pointer-chasing through
//! tree nodes dominates the placement path, so the table is now a single
//! sorted `Vec<(u64, Block)>`: lookups are a binary search over one
//! contiguous allocation, iteration is a linear scan in ascending owner
//! order — exactly the order the `BTreeMap` produced — and inserts/removes
//! are a `memmove` within one cache-friendly buffer.
//!
//! Serialization goes through a `BTreeMap` mirror so the JSON wire shape
//! (an object keyed by the stringified owner id, ascending) is byte-for-byte
//! identical to the historical encoding; snapshot fingerprints and golden
//! digests are unaffected by the layout change.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::Block;

/// Sorted dense map from owner tag to allocated block.
///
/// Invariant: `entries` is strictly sorted by owner.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct AllocationTable {
    entries: Vec<(u64, Block)>,
}

impl AllocationTable {
    /// An empty table.
    pub(crate) fn new() -> Self {
        AllocationTable::default()
    }

    /// Number of owners holding a block.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Position of `owner` in the sorted entries, or its insertion point.
    fn position(&self, owner: u64) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&owner, |&(o, _)| o)
    }

    /// The block held by `owner`, if any.
    pub(crate) fn get(&self, owner: &u64) -> Option<&Block> {
        self.position(*owner).ok().map(|i| &self.entries[i].1)
    }

    /// `true` when `owner` holds a block.
    pub(crate) fn contains_key(&self, owner: &u64) -> bool {
        self.position(*owner).is_ok()
    }

    /// Inserts or replaces `owner`'s block, returning the previous one.
    pub(crate) fn insert(&mut self, owner: u64, block: Block) -> Option<Block> {
        match self.position(owner) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, block)),
            Err(i) => {
                self.entries.insert(i, (owner, block));
                None
            }
        }
    }

    /// Removes `owner`'s entry, returning its block.
    pub(crate) fn remove(&mut self, owner: &u64) -> Option<Block> {
        match self.position(*owner) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterates `(owner, block)` pairs, ascending by owner.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&u64, &Block)> {
        self.entries.iter().map(|(o, b)| (o, b))
    }

    /// Iterates blocks, ascending by owner.
    pub(crate) fn values(&self) -> impl Iterator<Item = &Block> {
        self.entries.iter().map(|(_, b)| b)
    }

    /// Iterates owners in ascending order. (Only exercised by in-crate
    /// tests; the engine reaches owners through `iter`.)
    #[cfg(test)]
    pub(crate) fn keys(&self) -> impl Iterator<Item = &u64> {
        self.entries.iter().map(|(o, _)| o)
    }
}

impl Serialize for AllocationTable {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Mirror the historical `BTreeMap<u64, Block>` encoding exactly.
        let map: BTreeMap<u64, Block> = self.entries.iter().copied().collect();
        map.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for AllocationTable {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let map = BTreeMap::<u64, Block>::deserialize(deserializer)?;
        Ok(AllocationTable {
            entries: map.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(order: u32, offset: u32) -> Block {
        Block::new(order, offset)
    }

    #[test]
    fn insert_get_remove_keep_sorted_order() {
        let mut t = AllocationTable::new();
        assert_eq!(t.insert(5, block(0, 0)), None);
        assert_eq!(t.insert(1, block(1, 2)), None);
        assert_eq!(t.insert(9, block(2, 4)), None);
        assert_eq!(t.len(), 3);
        assert!(t.contains_key(&1));
        assert!(!t.contains_key(&2));
        assert_eq!(t.get(&5), Some(&block(0, 0)));
        assert_eq!(t.keys().copied().collect::<Vec<_>>(), vec![1, 5, 9]);
        // Replacement returns the old block and keeps one entry per owner.
        assert_eq!(t.insert(5, block(3, 8)), Some(block(0, 0)));
        assert_eq!(t.len(), 3);
        assert_eq!(t.remove(&5), Some(block(3, 8)));
        assert_eq!(t.remove(&5), None);
        assert_eq!(t.keys().copied().collect::<Vec<_>>(), vec![1, 9]);
    }

    #[test]
    fn serde_shape_matches_btreemap() {
        let mut t = AllocationTable::new();
        t.insert(10, block(1, 0));
        t.insert(2, block(0, 2));
        let map: BTreeMap<u64, Block> = t.iter().map(|(&o, &b)| (o, b)).collect();
        let via_table = serde_json::to_string(&t).unwrap();
        let via_map = serde_json::to_string(&map).unwrap();
        // Byte-identical wire encoding: snapshots cannot tell the layouts
        // apart, so fingerprints of either encoding agree.
        assert_eq!(via_table, via_map);
        let back: AllocationTable = serde_json::from_str(&via_table).unwrap();
        assert_eq!(t, back);
    }
}
