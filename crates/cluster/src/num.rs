//! Guarantee-sound numeric helpers (the remedies EF-L002 and EF-L004
//! point at).
//!
//! Scheduling math mixes accumulated floats (GPU-seconds, throughput,
//! deadline slack) with discrete resources (GPU counts, slot indices).
//! The two failure modes this module closes:
//!
//! * exact float `==`/`!=` flipping on rounding noise — use [`approx_eq`]
//!   / [`approx_ne`];
//! * `as` casts from float to integer silently truncating, saturating, or
//!   mapping NaN to 0 — use the checked conversions, which refuse
//!   non-finite and negative inputs instead of inventing a count.

/// Default tolerance for [`approx_eq`]: absolute for values near zero,
/// relative otherwise.
pub const DEFAULT_EPSILON: f64 = 1e-9;

/// `true` when `a` and `b` agree within [`DEFAULT_EPSILON`] (absolute near
/// zero, relative otherwise). NaN equals nothing, infinities only each
/// other (by sign).
///
/// # Example
///
/// ```
/// use elasticflow_cluster::num::approx_eq;
///
/// assert!(approx_eq(0.1 + 0.2, 0.3));
/// assert!(!approx_eq(1.0, 1.001));
/// assert!(!approx_eq(f64::NAN, f64::NAN));
/// ```
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, DEFAULT_EPSILON)
}

/// Negation of [`approx_eq`].
pub fn approx_ne(a: f64, b: f64) -> bool {
    !approx_eq(a, b)
}

/// [`approx_eq`] with an explicit tolerance.
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    if a == b {
        // Bitwise fast path of the approx helper itself (variable-vs-
        // variable compare; EF-L002 gates literal comparisons only).
        return true; // covers equal infinities and exact hits
    }
    if a.is_infinite() || b.is_infinite() {
        return false;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= eps * scale
}

/// Checked float → GPU count. `Some(n)` iff `x` is finite, within
/// `0..=u32::MAX`, and integral to within [`DEFAULT_EPSILON`].
///
/// # Example
///
/// ```
/// use elasticflow_cluster::num::gpu_count_from_f64;
///
/// assert_eq!(gpu_count_from_f64(4.0), Some(4));
/// assert_eq!(gpu_count_from_f64(4.0 + 1e-12), Some(4));
/// assert_eq!(gpu_count_from_f64(4.5), None);
/// assert_eq!(gpu_count_from_f64(-1.0), None);
/// assert_eq!(gpu_count_from_f64(f64::NAN), None);
/// ```
pub fn gpu_count_from_f64(x: f64) -> Option<u32> {
    if !x.is_finite() {
        return None;
    }
    let rounded = x.round();
    if !approx_eq(x, rounded) || rounded < 0.0 || rounded > u32::MAX as f64 {
        return None;
    }
    // Range-checked above; `as` here is exact for integers ≤ u32::MAX.
    Some(rounded as u32)
}

/// Checked `ceil` to a slot count. `Some` iff `x` is finite, the ceiling
/// is non-negative, and it fits `usize` exactly.
///
/// # Example
///
/// ```
/// use elasticflow_cluster::num::slots_ceil;
///
/// assert_eq!(slots_ceil(2.1), Some(3));
/// assert_eq!(slots_ceil(3.0), Some(3));
/// assert_eq!(slots_ceil(-0.5), Some(0));
/// assert_eq!(slots_ceil(f64::INFINITY), None);
/// assert_eq!(slots_ceil(f64::NAN), None);
/// ```
pub fn slots_ceil(x: f64) -> Option<usize> {
    float_to_usize(x.ceil())
}

/// Checked `floor` to a slot count (see [`slots_ceil`]).
///
/// # Example
///
/// ```
/// use elasticflow_cluster::num::slots_floor;
///
/// assert_eq!(slots_floor(2.9), Some(2));
/// assert_eq!(slots_floor(-1.0), None);
/// ```
pub fn slots_floor(x: f64) -> Option<usize> {
    float_to_usize(x.floor())
}

/// Shared tail of the slot conversions: `v` is already integral (post
/// `ceil`/`floor`); reject non-finite and negative, clamp `-0.0`/rounding
/// dust to 0.
fn float_to_usize(v: f64) -> Option<usize> {
    if !v.is_finite() || v < -0.5 {
        return None;
    }
    // Mantissa precision bounds exactly-representable integers; beyond
    // 2^53 a slot count is meaningless anyway, treat it as overflow.
    if v >= 9_007_199_254_740_992.0 {
        return None;
    }
    // elasticflow-lint: allow(EF-L004): non-negative, integral, and < 2^53 — exact
    Some(v.max(0.0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basics() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(approx_eq(1e12 + 0.0001, 1e12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(approx_ne(1.0, 2.0));
    }

    #[test]
    fn approx_eq_handles_non_finite() {
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(!approx_eq(f64::NAN, 0.0));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY));
        assert!(!approx_eq(f64::INFINITY, 1e300));
    }

    #[test]
    fn approx_eq_near_zero_is_absolute() {
        assert!(approx_eq(0.0, 1e-12));
        assert!(approx_eq(-1e-12, 1e-12));
        assert!(!approx_eq(0.0, 1e-6));
    }

    #[test]
    fn gpu_count_checks_integrality_and_range() {
        assert_eq!(gpu_count_from_f64(0.0), Some(0));
        assert_eq!(gpu_count_from_f64(128.0), Some(128));
        assert_eq!(gpu_count_from_f64(128.0000000001), Some(128));
        assert_eq!(gpu_count_from_f64(127.5), None);
        assert_eq!(gpu_count_from_f64(-4.0), None);
        assert_eq!(gpu_count_from_f64(5e9), None);
        assert_eq!(gpu_count_from_f64(f64::INFINITY), None);
    }

    #[test]
    fn slot_conversions() {
        assert_eq!(slots_ceil(0.0), Some(0));
        assert_eq!(slots_ceil(0.0001), Some(1));
        assert_eq!(slots_ceil(7.0), Some(7));
        assert_eq!(slots_floor(7.999), Some(7));
        assert_eq!(slots_ceil(-0.2), Some(0));
        assert_eq!(slots_floor(-0.2), None);
        assert_eq!(slots_ceil(1e300), None);
        assert_eq!(slots_floor(f64::NAN), None);
    }
}
