//! Error type for cluster operations.

use std::error::Error;
use std::fmt;

/// Errors returned by cluster allocation and placement operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The requested number of GPUs is not a power of two.
    ///
    /// ElasticFlow restricts worker counts to powers of two (paper §4.3) so
    /// that buddy allocation can guarantee fragmentation-free placement.
    NotPowerOfTwo {
        /// The offending request size.
        requested: u32,
    },
    /// The request exceeds the total capacity of the cluster.
    ExceedsCapacity {
        /// The offending request size.
        requested: u32,
        /// Total number of GPUs in the cluster.
        capacity: u32,
    },
    /// Not enough idle GPUs remain, even after defragmentation.
    Insufficient {
        /// The offending request size.
        requested: u32,
        /// Number of currently idle GPUs.
        idle: u32,
    },
    /// The given owner has no allocation.
    UnknownOwner {
        /// The owner tag that was not found.
        owner: u64,
    },
    /// The given owner already holds an allocation.
    AlreadyAllocated {
        /// The owner tag that already holds a block.
        owner: u64,
    },
    /// An internal invariant of this crate was violated — a bug, not bad
    /// input. Carried as a typed error instead of a panic so scheduling
    /// loops can surface the diagnostic without aborting the process.
    Internal {
        /// What the violated invariant was supposed to guarantee.
        context: &'static str,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NotPowerOfTwo { requested } => {
                write!(f, "requested GPU count {requested} is not a power of two")
            }
            ClusterError::ExceedsCapacity {
                requested,
                capacity,
            } => write!(
                f,
                "requested {requested} GPUs but the cluster only has {capacity}"
            ),
            ClusterError::Insufficient { requested, idle } => {
                write!(f, "requested {requested} GPUs but only {idle} are idle")
            }
            ClusterError::UnknownOwner { owner } => {
                write!(f, "owner {owner} holds no allocation")
            }
            ClusterError::AlreadyAllocated { owner } => {
                write!(f, "owner {owner} already holds an allocation")
            }
            ClusterError::Internal { context } => {
                write!(f, "internal cluster invariant violated: {context}")
            }
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let cases: Vec<(ClusterError, &str)> = vec![
            (
                ClusterError::NotPowerOfTwo { requested: 3 },
                "requested GPU count 3 is not a power of two",
            ),
            (
                ClusterError::ExceedsCapacity {
                    requested: 256,
                    capacity: 128,
                },
                "requested 256 GPUs but the cluster only has 128",
            ),
            (
                ClusterError::Insufficient {
                    requested: 8,
                    idle: 4,
                },
                "requested 8 GPUs but only 4 are idle",
            ),
            (
                ClusterError::UnknownOwner { owner: 7 },
                "owner 7 holds no allocation",
            ),
            (
                ClusterError::AlreadyAllocated { owner: 7 },
                "owner 7 already holds an allocation",
            ),
            (
                ClusterError::Internal {
                    context: "buddy bookkeeping desynced",
                },
                "internal cluster invariant violated: buddy bookkeeping desynced",
            ),
        ];
        for (err, msg) in cases {
            assert_eq!(err.to_string(), msg);
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusterError>();
    }
}
