//! Multi-layer hierarchical GPU topology (paper Fig. 5).
//!
//! The topology is a perfect tree described bottom-up by per-level fanouts.
//! Level 0 is the *GPU level* (the leaves). Each internal level `l >= 1`
//! groups `fanout` children of level `l - 1` and is labelled with the
//! bandwidth of the interconnect that joins them (PCIe, QPI/NVLink,
//! InfiniBand, ...). The last level always contains exactly one node: the
//! whole cluster.

use serde::{Deserialize, Serialize};

use crate::GpuId;

/// One internal level of the topology tree.
///
/// # Example
///
/// ```
/// use elasticflow_cluster::Level;
///
/// let pcie = Level::new("pcie", 4, 32.0e9);
/// assert_eq!(pcie.name(), "pcie");
/// assert_eq!(pcie.fanout(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Level {
    name: String,
    fanout: usize,
    bandwidth_bytes_per_sec: f64,
}

impl Level {
    /// Creates a level grouping `fanout` children, joined by a link with the
    /// given *effective all-reduce* bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero or `bandwidth_bytes_per_sec` is not
    /// strictly positive and finite.
    pub fn new(name: impl Into<String>, fanout: usize, bandwidth_bytes_per_sec: f64) -> Self {
        assert!(fanout > 0, "level fanout must be positive");
        assert!(
            bandwidth_bytes_per_sec.is_finite() && bandwidth_bytes_per_sec > 0.0,
            "level bandwidth must be positive and finite"
        );
        Level {
            name: name.into(),
            fanout,
            bandwidth_bytes_per_sec,
        }
    }

    /// Human-readable name of the interconnect at this level.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of level-below units grouped by one node of this level.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Effective all-reduce bandwidth of this level's link, bytes/second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.bandwidth_bytes_per_sec
    }
}

/// A perfect hierarchical topology tree over GPUs.
///
/// # Example
///
/// ```
/// use elasticflow_cluster::{Level, Topology};
///
/// // 2 servers, each with 2 sockets of 4 GPUs.
/// let topo = Topology::new(vec![
///     Level::new("pcie", 4, 32.0e9),
///     Level::new("qpi", 2, 28.0e9),
///     Level::new("ib", 2, 3.6e9),
/// ]);
/// assert_eq!(topo.num_gpus(), 16);
/// assert_eq!(topo.gpus_per_server(), 8);
/// assert_eq!(topo.num_servers(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    levels: Vec<Level>,
    /// `subtree_gpus[l]` = number of GPUs under one node of level `l`
    /// (level 0 = a single GPU, so `subtree_gpus[0]` is `levels[0].fanout`).
    subtree_gpus: Vec<usize>,
    /// Index into `levels` of the first level whose subtree spans more than
    /// one server (i.e. the first *network* level), or `levels.len()` if the
    /// topology is a single server.
    server_level: usize,
}

impl Topology {
    /// Builds a topology from bottom-up levels. The level at index 0 is the
    /// one closest to the GPUs.
    ///
    /// The *server boundary* is inferred as the first level named `"ib"`,
    /// `"tor"`, `"network"`, or `"rack"`; everything below it is considered
    /// intra-server. Use [`Topology::with_server_level`] to set it
    /// explicitly.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(levels: Vec<Level>) -> Self {
        assert!(!levels.is_empty(), "topology needs at least one level");
        let server_level = levels
            .iter()
            .position(|l| matches!(l.name(), "ib" | "tor" | "network" | "rack" | "ethernet"))
            .unwrap_or(levels.len());
        Self::with_server_level(levels, server_level)
    }

    /// Builds a topology and explicitly marks `server_level` as the index of
    /// the first level that crosses server boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or `server_level > levels.len()`.
    pub fn with_server_level(levels: Vec<Level>, server_level: usize) -> Self {
        assert!(!levels.is_empty(), "topology needs at least one level");
        assert!(
            server_level <= levels.len(),
            "server level out of range: {server_level} > {}",
            levels.len()
        );
        let mut subtree_gpus = Vec::with_capacity(levels.len());
        let mut acc = 1usize;
        for level in &levels {
            acc = acc
                .checked_mul(level.fanout())
                // elasticflow-lint: allow(EF-L001): constructor contract — a topology wider than usize is a configuration error caught at build time, in line with the asserts above; never reached from scheduling paths
                .expect("topology size overflow");
            subtree_gpus.push(acc);
        }
        Topology {
            levels,
            subtree_gpus,
            server_level,
        }
    }

    /// Total number of GPUs (leaves) in the cluster.
    pub fn num_gpus(&self) -> u32 {
        // The constructor rejects empty level lists, so `last()` is always
        // `Some`; the zero fallback is unreachable.
        self.subtree_gpus.last().copied().unwrap_or(0) as u32
    }

    /// The bottom-up list of levels.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Number of GPUs contained in one subtree rooted at `level`
    /// (1-based over internal levels; level index as in [`Topology::levels`]).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels().len()`.
    pub fn subtree_gpus(&self, level: usize) -> u32 {
        self.subtree_gpus[level] as u32
    }

    /// Number of GPUs on a single server.
    pub fn gpus_per_server(&self) -> u32 {
        if self.server_level == 0 {
            1
        } else {
            self.subtree_gpus[self.server_level - 1] as u32
        }
    }

    /// Number of servers in the cluster.
    pub fn num_servers(&self) -> u32 {
        self.num_gpus() / self.gpus_per_server()
    }

    /// The server that hosts the given GPU.
    pub fn server_of(&self, gpu: GpuId) -> crate::ServerId {
        crate::ServerId::new(gpu.index() / self.gpus_per_server())
    }

    /// Returns the smallest level index `l` such that a single level-`l`
    /// subtree contains at least `gpus` GPUs, i.e. the level of the tightest
    /// subtree that can host an aligned block of that size.
    ///
    /// Returns `None` when `gpus` exceeds the cluster size.
    ///
    /// # Example
    ///
    /// ```
    /// use elasticflow_cluster::ClusterSpec;
    ///
    /// let topo = ClusterSpec::paper_testbed().build_topology();
    /// // 8 GPUs fit in one server (levels: pcie=4, qpi x2 -> 8).
    /// assert_eq!(topo.tightest_level(8), Some(1));
    /// assert_eq!(topo.tightest_level(16), Some(2));
    /// ```
    pub fn tightest_level(&self, gpus: u32) -> Option<usize> {
        if gpus <= 1 {
            return Some(0);
        }
        self.subtree_gpus.iter().position(|&n| n as u32 >= gpus)
    }

    /// Bottleneck (slowest) link bandwidth crossed by a set of GPUs, in
    /// bytes/second. A single GPU communicates with itself at effectively
    /// infinite speed; we return the level-0 bandwidth as a convention.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is empty or any id is out of range.
    pub fn bottleneck_bandwidth(&self, gpus: &[GpuId]) -> f64 {
        assert!(!gpus.is_empty(), "bottleneck of an empty placement");
        let level = self.highest_level_crossed(gpus);
        self.levels[level].bandwidth_bytes_per_sec()
    }

    /// The highest level whose link must be crossed for the given GPUs to
    /// communicate: the level of the least common ancestor of the set.
    /// A singleton set crosses level 0 by convention.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is empty or any id is out of range.
    pub fn highest_level_crossed(&self, gpus: &[GpuId]) -> usize {
        assert!(!gpus.is_empty(), "empty placement has no LCA");
        let n = self.num_gpus();
        for g in gpus {
            assert!(g.index() < n, "gpu {g} out of range (cluster has {n})");
        }
        // Nonempty is asserted above, so the zero fallbacks are unreachable.
        let min = gpus.iter().map(|g| g.as_usize()).min().unwrap_or(0);
        let max = gpus.iter().map(|g| g.as_usize()).max().unwrap_or(0);
        // Walk up until min and max fall under the same subtree.
        for (l, &size) in self.subtree_gpus.iter().enumerate() {
            if min / size == max / size {
                return l;
            }
        }
        self.levels.len() - 1
    }

    /// `true` when the given GPUs all live on the same server.
    pub fn same_server(&self, gpus: &[GpuId]) -> bool {
        if gpus.is_empty() {
            return true;
        }
        let first = self.server_of(gpus[0]);
        gpus.iter().all(|&g| self.server_of(g) == first)
    }

    /// Index of the first inter-server (network) level.
    pub fn server_level(&self) -> usize {
        self.server_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterSpec;

    fn topo_2x8() -> Topology {
        // 2 servers x (2 sockets x 4 GPUs)
        Topology::new(vec![
            Level::new("pcie", 4, 32.0e9),
            Level::new("qpi", 2, 28.0e9),
            Level::new("ib", 2, 3.6e9),
        ])
    }

    #[test]
    fn sizes() {
        let t = topo_2x8();
        assert_eq!(t.num_gpus(), 16);
        assert_eq!(t.gpus_per_server(), 8);
        assert_eq!(t.num_servers(), 2);
        assert_eq!(t.server_level(), 2);
    }

    #[test]
    fn server_of_gpu() {
        let t = topo_2x8();
        assert_eq!(t.server_of(GpuId::new(0)).index(), 0);
        assert_eq!(t.server_of(GpuId::new(7)).index(), 0);
        assert_eq!(t.server_of(GpuId::new(8)).index(), 1);
    }

    #[test]
    fn highest_level_crossed_cases() {
        let t = topo_2x8();
        // Same PCIe switch.
        assert_eq!(t.highest_level_crossed(&[GpuId::new(0), GpuId::new(3)]), 0);
        // Across sockets on the same server.
        assert_eq!(t.highest_level_crossed(&[GpuId::new(0), GpuId::new(4)]), 1);
        // Across servers.
        assert_eq!(t.highest_level_crossed(&[GpuId::new(0), GpuId::new(8)]), 2);
        // Single GPU.
        assert_eq!(t.highest_level_crossed(&[GpuId::new(5)]), 0);
    }

    #[test]
    fn bottleneck_bandwidth_matches_level() {
        let t = topo_2x8();
        let intra = t.bottleneck_bandwidth(&[GpuId::new(0), GpuId::new(1)]);
        let cross = t.bottleneck_bandwidth(&[GpuId::new(0), GpuId::new(15)]);
        assert_eq!(intra, 32.0e9);
        assert_eq!(cross, 3.6e9);
        assert!(cross < intra);
    }

    #[test]
    fn same_server_detection() {
        let t = topo_2x8();
        assert!(t.same_server(&[GpuId::new(1), GpuId::new(6)]));
        assert!(!t.same_server(&[GpuId::new(1), GpuId::new(9)]));
        assert!(t.same_server(&[]));
    }

    #[test]
    fn tightest_level_ladder() {
        let t = topo_2x8();
        assert_eq!(t.tightest_level(1), Some(0));
        assert_eq!(t.tightest_level(2), Some(0));
        assert_eq!(t.tightest_level(4), Some(0));
        assert_eq!(t.tightest_level(8), Some(1));
        assert_eq!(t.tightest_level(16), Some(2));
        assert_eq!(t.tightest_level(32), None);
    }

    #[test]
    fn paper_testbed_is_128_gpus() {
        let t = ClusterSpec::paper_testbed().build_topology();
        assert_eq!(t.num_gpus(), 128);
        assert_eq!(t.num_servers(), 16);
        assert_eq!(t.gpus_per_server(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_gpu_panics() {
        let t = topo_2x8();
        t.highest_level_crossed(&[GpuId::new(99)]);
    }

    #[test]
    fn serde_roundtrip() {
        let t = topo_2x8();
        let json = serde_json::to_string(&t).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
