//! Concrete and hypothetical worker placements.

use serde::{Deserialize, Serialize};

use crate::{Block, GpuId, ServerId, Topology};

/// The concrete set of GPUs assigned to a job, with derived topology facts.
///
/// A `Placement` is produced by [`crate::ClusterState`] from a buddy
/// [`Block`], so it is always an aligned power-of-two group — the tightest
/// subtree that can host the job.
///
/// # Example
///
/// ```
/// use elasticflow_cluster::{ClusterSpec, ClusterState};
///
/// let mut cluster = ClusterState::new(ClusterSpec::paper_testbed().build_topology());
/// let p = cluster.allocate(1, 16).unwrap();
/// assert_eq!(p.num_gpus(), 16);
/// assert_eq!(p.num_servers(), 2); // 16 GPUs span two 8-GPU servers
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    block: Block,
    highest_level: usize,
    bottleneck_bandwidth: f64,
    servers: Vec<ServerId>,
    gpus_per_server: u32,
}

impl Placement {
    /// Derives a placement from a buddy block under the given topology.
    pub fn from_block(block: Block, topology: &Topology) -> Self {
        let gpus = block.gpus();
        let highest_level = topology.highest_level_crossed(&gpus);
        let bottleneck_bandwidth = topology.bottleneck_bandwidth(&gpus);
        let mut servers: Vec<ServerId> = gpus.iter().map(|&g| topology.server_of(g)).collect();
        servers.dedup();
        let gpus_per_server = block.size() / servers.len() as u32;
        Placement {
            block,
            highest_level,
            bottleneck_bandwidth,
            servers,
            gpus_per_server,
        }
    }

    /// The underlying buddy block.
    pub fn block(&self) -> Block {
        self.block
    }

    /// Number of GPUs in the placement.
    pub fn num_gpus(&self) -> u32 {
        self.block.size()
    }

    /// The GPUs in ascending order.
    pub fn gpus(&self) -> Vec<GpuId> {
        self.block.gpus()
    }

    /// Number of distinct servers the placement touches.
    pub fn num_servers(&self) -> u32 {
        self.servers.len() as u32
    }

    /// The servers the placement touches, ascending.
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// GPUs used on each touched server (uniform for aligned blocks).
    pub fn gpus_per_server(&self) -> u32 {
        self.gpus_per_server
    }

    /// The highest (slowest) topology level the workers must cross.
    pub fn highest_level(&self) -> usize {
        self.highest_level
    }

    /// Effective all-reduce bandwidth of the slowest link crossed, bytes/s.
    pub fn bottleneck_bandwidth(&self) -> f64 {
        self.bottleneck_bandwidth
    }

    /// The shape of this placement (for the performance model).
    pub fn shape(&self) -> PlacementShape {
        PlacementShape::new(self.num_servers(), self.gpus_per_server)
    }
}

/// A hypothetical placement shape: `servers` machines each contributing
/// `gpus_per_server` workers. Used to evaluate throughput under arbitrary
/// spreads (paper Fig. 2b compares 8x1, 4x2, 2x4 and 1x8 for 8-GPU jobs).
///
/// # Example
///
/// ```
/// use elasticflow_cluster::PlacementShape;
///
/// let spread = PlacementShape::new(8, 1);
/// assert_eq!(spread.total_gpus(), 8);
/// assert!(spread.crosses_servers());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlacementShape {
    servers: u32,
    gpus_per_server: u32,
}

impl PlacementShape {
    /// Creates a shape of `servers` machines x `gpus_per_server` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(servers: u32, gpus_per_server: u32) -> Self {
        assert!(servers > 0, "a placement needs at least one server");
        assert!(
            gpus_per_server > 0,
            "a placement needs at least one GPU per server"
        );
        PlacementShape {
            servers,
            gpus_per_server,
        }
    }

    /// A single-server shape with `gpus` workers.
    pub fn single_server(gpus: u32) -> Self {
        PlacementShape::new(1, gpus)
    }

    /// The best (most consolidated) shape for `gpus` workers on a cluster
    /// with `gpus_per_server` GPUs per machine — what buddy allocation
    /// produces.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` or `gpus_per_server` is zero.
    pub fn consolidated(gpus: u32, gpus_per_server: u32) -> Self {
        assert!(gpus > 0 && gpus_per_server > 0);
        if gpus <= gpus_per_server {
            PlacementShape::new(1, gpus)
        } else {
            PlacementShape::new(gpus.div_ceil(gpus_per_server), gpus_per_server)
        }
    }

    /// Number of servers in the shape.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// GPUs per server in the shape.
    pub fn gpus_per_server(&self) -> u32 {
        self.gpus_per_server
    }

    /// Total number of workers.
    pub fn total_gpus(&self) -> u32 {
        self.servers * self.gpus_per_server
    }

    /// `true` when the shape spans more than one server.
    pub fn crosses_servers(&self) -> bool {
        self.servers > 1
    }
}

impl std::fmt::Display for PlacementShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.servers, self.gpus_per_server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterSpec;

    #[test]
    fn placement_from_block_within_server() {
        let topo = ClusterSpec::paper_testbed().build_topology();
        let p = Placement::from_block(Block::new(3, 0), &topo);
        assert_eq!(p.num_gpus(), 8);
        assert_eq!(p.num_servers(), 1);
        assert_eq!(p.gpus_per_server(), 8);
        assert!(!p.shape().crosses_servers());
    }

    #[test]
    fn placement_from_block_across_servers() {
        let topo = ClusterSpec::paper_testbed().build_topology();
        let p = Placement::from_block(Block::new(5, 0), &topo);
        assert_eq!(p.num_gpus(), 32);
        assert_eq!(p.num_servers(), 4);
        assert_eq!(p.gpus_per_server(), 8);
        assert!(p.shape().crosses_servers());
        // Crossing servers means hitting the network bandwidth.
        assert!(p.bottleneck_bandwidth() < 10.0e9);
    }

    #[test]
    fn consolidated_shapes() {
        assert_eq!(
            PlacementShape::consolidated(4, 8),
            PlacementShape::new(1, 4)
        );
        assert_eq!(
            PlacementShape::consolidated(8, 8),
            PlacementShape::new(1, 8)
        );
        assert_eq!(
            PlacementShape::consolidated(32, 8),
            PlacementShape::new(4, 8)
        );
    }

    #[test]
    fn display_shape() {
        assert_eq!(PlacementShape::new(4, 2).to_string(), "4x2");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        PlacementShape::new(0, 1);
    }
}
