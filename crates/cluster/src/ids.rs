//! Strongly typed identifiers for cluster resources.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a single GPU, a global index over all leaves of the
/// topology tree (`0..topology.num_gpus()`).
///
/// # Example
///
/// ```
/// use elasticflow_cluster::GpuId;
///
/// let gpu = GpuId::new(5);
/// assert_eq!(gpu.index(), 5);
/// assert_eq!(format!("{gpu}"), "gpu5");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GpuId(u32);

impl GpuId {
    /// Creates a GPU id from a global index.
    pub fn new(index: u32) -> Self {
        GpuId(index)
    }

    /// Returns the global index of this GPU.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as `usize`, convenient for slicing.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

impl From<u32> for GpuId {
    fn from(index: u32) -> Self {
        GpuId(index)
    }
}

/// Identifier of a server (a machine hosting several GPUs).
///
/// # Example
///
/// ```
/// use elasticflow_cluster::ServerId;
///
/// let server = ServerId::new(3);
/// assert_eq!(format!("{server}"), "server3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ServerId(u32);

impl ServerId {
    /// Creates a server id from an index.
    pub fn new(index: u32) -> Self {
        ServerId(index)
    }

    /// Returns the index of this server.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as `usize`.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server{}", self.0)
    }
}

impl From<u32> for ServerId {
    fn from(index: u32) -> Self {
        ServerId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_id_roundtrip() {
        let id = GpuId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_usize(), 42);
        assert_eq!(GpuId::from(42u32), id);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(GpuId::new(0).to_string(), "gpu0");
        assert_eq!(ServerId::new(7).to_string(), "server7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(GpuId::new(1) < GpuId::new(2));
        assert!(ServerId::new(0) < ServerId::new(1));
    }

    #[test]
    fn serde_roundtrip() {
        let id = GpuId::new(9);
        let json = serde_json::to_string(&id).unwrap();
        let back: GpuId = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
    }
}
