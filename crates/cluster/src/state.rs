//! Cluster-wide allocation bookkeeping with defragmentation.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::table::AllocationTable;
use crate::{Block, BuddyAllocator, ClusterError, Placement, Topology};

/// A job relocation emitted by defragmentation: move the owner's workers
/// from one block of GPUs to another of the same size.
///
/// Migrations are not free — the simulator charges the checkpoint/restore
/// overhead measured in the paper's Fig. 12(b) for each one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// The owner (job) being moved.
    pub owner: u64,
    /// Block the job currently occupies.
    pub from: Block,
    /// Block the job is moved to.
    pub to: Block,
}

/// Allocation state of a whole cluster: topology + buddy allocator + the
/// block each owner currently holds.
///
/// Owners are opaque `u64` tags (job ids at higher layers).
///
/// # Example
///
/// ```
/// use elasticflow_cluster::{ClusterSpec, ClusterState};
///
/// let mut cluster = ClusterState::new(ClusterSpec::with_servers(2, 8).build_topology());
/// let p1 = cluster.allocate(1, 8)?;
/// let p2 = cluster.allocate(2, 4)?;
/// assert_eq!(cluster.idle_gpus(), 4);
/// cluster.release(1)?;
/// assert_eq!(cluster.idle_gpus(), 12);
/// # Ok::<(), elasticflow_cluster::ClusterError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    topology: Topology,
    buddy: BuddyAllocator,
    /// Dense sorted owner → block table; iteration order (ascending owner)
    /// and serialized shape are identical to the former `BTreeMap`.
    allocations: AllocationTable,
    /// Owners whose blocks must never be relocated by defragmentation —
    /// used to fence off failed servers (the block *is* the hardware).
    #[serde(default)]
    pinned: BTreeSet<u64>,
}

impl ClusterState {
    /// Creates an empty cluster over the given topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology's GPU count is not a power of two (required
    /// for buddy allocation).
    pub fn new(topology: Topology) -> Self {
        let buddy = BuddyAllocator::new(topology.num_gpus());
        ClusterState {
            topology,
            buddy,
            allocations: AllocationTable::new(),
            pinned: BTreeSet::new(),
        }
    }

    /// The cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Total number of GPUs.
    pub fn capacity(&self) -> u32 {
        self.buddy.capacity()
    }

    /// Number of idle GPUs.
    pub fn idle_gpus(&self) -> u32 {
        self.buddy.idle_gpus()
    }

    /// Number of allocated GPUs.
    pub fn used_gpus(&self) -> u32 {
        self.capacity() - self.idle_gpus()
    }

    /// Number of owners currently holding GPUs.
    pub fn num_owners(&self) -> usize {
        self.allocations.len()
    }

    /// The placement currently held by `owner`, if any.
    pub fn placement_of(&self, owner: u64) -> Option<Placement> {
        self.allocations
            .get(&owner)
            .map(|&b| Placement::from_block(b, &self.topology))
    }

    /// Allocates `size` GPUs (a power of two) to `owner` **without**
    /// defragmentation.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::AlreadyAllocated`] if the owner holds a block;
    /// * [`ClusterError::NotPowerOfTwo`] / [`ClusterError::ExceedsCapacity`]
    ///   for invalid sizes;
    /// * [`ClusterError::Insufficient`] when no aligned block exists —
    ///   possibly due to fragmentation; see
    ///   [`ClusterState::allocate_with_defrag`].
    pub fn allocate(&mut self, owner: u64, size: u32) -> Result<Placement, ClusterError> {
        if self.allocations.contains_key(&owner) {
            return Err(ClusterError::AlreadyAllocated { owner });
        }
        let block = self.buddy.allocate(size)?;
        self.allocations.insert(owner, block);
        Ok(Placement::from_block(block, &self.topology))
    }

    /// Allocates `size` GPUs to `owner`, migrating existing jobs if needed.
    ///
    /// This realizes the paper's §4.3 guarantee: with power-of-two jobs and
    /// migration, a request succeeds whenever `idle_gpus() >= size`. Returns
    /// the placement together with the migrations performed (empty when no
    /// defragmentation was necessary).
    ///
    /// # Errors
    ///
    /// Same as [`ClusterState::allocate`], except fragmentation-induced
    /// [`ClusterError::Insufficient`] is resolved by migration; it is only
    /// returned when idle capacity is genuinely short.
    pub fn allocate_with_defrag(
        &mut self,
        owner: u64,
        size: u32,
    ) -> Result<(Placement, Vec<Migration>), ClusterError> {
        match self.allocate(owner, size) {
            Ok(p) => Ok((p, Vec::new())),
            Err(ClusterError::Insufficient { .. }) if self.idle_gpus() >= size => {
                // Minimal-move defragmentation first; full repack only as
                // a fallback (it relocates far more jobs, and every
                // migration pauses a job for a checkpoint/restore).
                let migrations = match self.evict_region(size) {
                    Some(migrations) => migrations,
                    None => self.defragment(),
                };
                let p = self
                    .allocate(owner, size)
                    .map_err(|_| ClusterError::Internal {
                        context: "defragmentation must yield an aligned block when idle >= size",
                    })?;
                Ok((p, migrations))
            }
            Err(e) => Err(e),
        }
    }

    /// Minimal-move defragmentation: picks the aligned `size`-region with
    /// the fewest allocated GPUs and relocates only the blocks inside it.
    /// Returns `None` when the displaced blocks cannot be re-packed outside
    /// the region (the caller falls back to a full repack).
    fn evict_region(&mut self, size: u32) -> Option<Vec<Migration>> {
        debug_assert!(size.is_power_of_two() && size <= self.capacity());
        // Choose the cheapest victim region.
        let mut best: Option<(u32, u32)> = None; // (used_gpus, offset)
        let mut offset = 0u32;
        while offset < self.capacity() {
            let contains_pinned = self.allocations.iter().any(|(o, b)| {
                self.pinned.contains(o) && b.offset() >= offset && b.offset() < offset + size
            });
            // Pinned blocks (failed servers) cannot be relocated; regions
            // containing or contained in them are off limits.
            let covered_by_pinned = self.allocations.iter().any(|(o, b)| {
                self.pinned.contains(o) && b.offset() <= offset && offset < b.offset() + b.size()
            });
            if !contains_pinned && !covered_by_pinned {
                let used: u32 = self
                    .allocations
                    .values()
                    .filter(|b| b.offset() >= offset && b.offset() < offset + size)
                    .map(|b| b.size())
                    .sum();
                if best.map(|(u, _)| used < u).unwrap_or(true) {
                    best = Some((used, offset));
                }
            }
            offset += size;
        }
        let (_, region_offset) = best?;
        let region = Block::new(size.trailing_zeros(), region_offset);
        // Snapshot, then relocate the victims on a scratch copy so failure
        // leaves `self` untouched.
        let victims: Vec<(u64, Block)> = self
            .allocations
            .iter()
            .filter(|(_, b)| region.contains(crate::GpuId::new(b.offset())))
            .map(|(&o, &b)| (o, b))
            .collect();
        let mut scratch_buddy = self.buddy.clone();
        for (_, block) in &victims {
            scratch_buddy.free(*block);
        }
        // Reserve the region, then re-place victims largest-first.
        scratch_buddy.allocate_at(region).ok()?;
        let mut moves = Vec::new();
        let mut sorted = victims.clone();
        sorted.sort_by(|a, b| b.1.size().cmp(&a.1.size()).then(a.0.cmp(&b.0)));
        for (owner, old_block) in sorted {
            let new_block = scratch_buddy.allocate(old_block.size()).ok()?;
            moves.push(Migration {
                owner,
                from: old_block,
                to: new_block,
            });
        }
        // Commit: release the reservation (the caller allocates normally).
        scratch_buddy.free(region);
        self.buddy = scratch_buddy;
        for m in &moves {
            self.allocations.insert(m.owner, m.to);
        }
        Some(moves)
    }

    /// Releases the block held by `owner`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownOwner`] if the owner holds nothing.
    pub fn release(&mut self, owner: u64) -> Result<(), ClusterError> {
        let block = self
            .allocations
            .remove(&owner)
            .ok_or(ClusterError::UnknownOwner { owner })?;
        self.pinned.remove(&owner);
        self.buddy.free(block);
        Ok(())
    }

    /// Allocates the *exact* block `block` to `owner` and pins it: the
    /// block will never be relocated by defragmentation. Used to fence off
    /// failed servers — the pinned block stands for the dead hardware.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::AlreadyAllocated`] if the owner holds a block;
    /// * [`ClusterError::Insufficient`] if any covered GPU is busy;
    /// * [`ClusterError::ExceedsCapacity`] if the block is out of range.
    pub fn allocate_pinned(&mut self, owner: u64, block: Block) -> Result<(), ClusterError> {
        if self.allocations.contains_key(&owner) {
            return Err(ClusterError::AlreadyAllocated { owner });
        }
        self.buddy.allocate_at(block)?;
        self.allocations.insert(owner, block);
        self.pinned.insert(owner);
        Ok(())
    }

    /// `true` when the owner's block is pinned.
    pub fn is_pinned(&self, owner: u64) -> bool {
        self.pinned.contains(&owner)
    }

    /// Changes `owner`'s allocation to `new_size`, defragmenting if needed.
    /// Returns the new placement and any migrations of *other* jobs.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::UnknownOwner`] if the owner holds nothing;
    /// * [`ClusterError::Insufficient`] if the grow cannot be satisfied (the
    ///   original allocation is restored in that case).
    pub fn resize(
        &mut self,
        owner: u64,
        new_size: u32,
    ) -> Result<(Placement, Vec<Migration>), ClusterError> {
        let old = *self
            .allocations
            .get(&owner)
            .ok_or(ClusterError::UnknownOwner { owner })?;
        if old.size() == new_size {
            return Ok((Placement::from_block(old, &self.topology), Vec::new()));
        }
        if !new_size.is_power_of_two() || new_size == 0 {
            return Err(ClusterError::NotPowerOfTwo {
                requested: new_size,
            });
        }
        if new_size > self.capacity() {
            return Err(ClusterError::ExceedsCapacity {
                requested: new_size,
                capacity: self.capacity(),
            });
        }
        // Prefer resizing *in place*: shrink to the aligned sub-block at
        // the same offset, or grow into the enclosing aligned block when
        // its other half is free. In-place changes relocate nobody, so no
        // bystander migration pauses are charged.
        self.release(owner)?;
        let new_order = new_size.trailing_zeros();
        let in_place = Block::new(new_order, old.offset() & !(new_size - 1));
        if self.buddy.allocate_at(in_place).is_ok() {
            self.allocations.insert(owner, in_place);
            return Ok((Placement::from_block(in_place, &self.topology), Vec::new()));
        }
        match self.allocate_with_defrag(owner, new_size) {
            Ok(ok) => Ok(ok),
            Err(e) => {
                // Roll back: the old block must still be obtainable because
                // we just freed it and nothing else changed.
                let (restored, _) = self.allocate_with_defrag(owner, old.size()).map_err(|_| {
                    ClusterError::Internal {
                        context: "rollback to the original size must succeed after a failed resize",
                    }
                })?;
                debug_assert_eq!(restored.num_gpus(), old.size());
                Err(e)
            }
        }
    }

    /// Compacts all allocations to eliminate fragmentation, returning the
    /// migrations performed. Blocks are re-packed largest-first, which for
    /// power-of-two sizes always succeeds and leaves all idle GPUs mergeable
    /// into maximal aligned blocks.
    pub fn defragment(&mut self) -> Vec<Migration> {
        let mut entries: Vec<(u64, Block)> =
            self.allocations.iter().map(|(&o, &b)| (o, b)).collect();
        // Largest first; owner id breaks ties for determinism.
        entries.sort_by(|a, b| b.1.size().cmp(&a.1.size()).then(a.0.cmp(&b.0)));
        let mut fresh = BuddyAllocator::new(self.capacity());
        let mut migrations = Vec::new();
        let mut new_allocations = AllocationTable::new();
        // Pinned blocks (failed servers) keep their exact positions.
        for (owner, block) in &entries {
            if self.pinned.contains(owner) {
                fresh
                    .allocate_at(*block)
                    // elasticflow-lint: allow(EF-L001): pinned blocks were disjoint and in range in the old allocator and the fresh one has identical capacity; a failure here means corrupted bookkeeping, where continuing would double-assign GPUs
                    .expect("pinned blocks are disjoint and in range");
                new_allocations.insert(*owner, *block);
            }
        }
        for (owner, old_block) in entries {
            if self.pinned.contains(&owner) {
                continue;
            }
            let new_block = fresh
                .allocate(old_block.size())
                // elasticflow-lint: allow(EF-L001): largest-first repacking of power-of-two blocks that fit before cannot fail in an equal-capacity buddy allocator; defragment() has no error channel and a quiet skip would leak the job's GPUs
                .expect("largest-first packing of power-of-two blocks cannot fail");
            if new_block != old_block {
                migrations.push(Migration {
                    owner,
                    from: old_block,
                    to: new_block,
                });
            }
            new_allocations.insert(owner, new_block);
        }
        self.buddy = fresh;
        self.allocations = new_allocations;
        migrations
    }

    /// Iterates over `(owner, placement)` pairs, ascending by owner.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Placement)> + '_ {
        self.allocations
            .iter()
            .map(|(&o, &b)| (o, Placement::from_block(b, &self.topology)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterSpec;

    fn cluster_2x8() -> ClusterState {
        ClusterState::new(ClusterSpec::with_servers(2, 8).build_topology())
    }

    #[test]
    fn allocate_and_release() {
        let mut c = cluster_2x8();
        let p = c.allocate(7, 8).unwrap();
        assert_eq!(p.num_gpus(), 8);
        assert_eq!(c.used_gpus(), 8);
        assert_eq!(c.num_owners(), 1);
        c.release(7).unwrap();
        assert_eq!(c.used_gpus(), 0);
        assert_eq!(c.release(7), Err(ClusterError::UnknownOwner { owner: 7 }));
    }

    #[test]
    fn duplicate_owner_rejected() {
        let mut c = cluster_2x8();
        c.allocate(1, 2).unwrap();
        assert_eq!(
            c.allocate(1, 2),
            Err(ClusterError::AlreadyAllocated { owner: 1 })
        );
    }

    #[test]
    fn paper_defrag_example() {
        // Paper §4.3: 7 GPUs of server 1 to job A, 7 of server 2 to job B
        // leaves 2 idle GPUs but no aligned pair. With powers of two the
        // analogous scenario: jobs of sizes 4+2+1 on each server leave one
        // idle GPU per server; a 2-GPU job then needs migration.
        let mut c = cluster_2x8();
        // Fill the cluster with 16 single-GPU jobs, then release every other
        // one: 8 idle GPUs remain but no two of them form an aligned pair.
        for owner in 0..16u64 {
            c.allocate(owner, 1).unwrap();
        }
        for owner in (1..16u64).step_by(2) {
            c.release(owner).unwrap();
        }
        assert_eq!(c.idle_gpus(), 8);
        assert!(c.allocate(99, 2).is_err());
        let (p, migrations) = c.allocate_with_defrag(99, 2).unwrap();
        assert_eq!(p.num_gpus(), 2);
        assert!(!migrations.is_empty());
        assert_eq!(c.idle_gpus(), 6);
        // Migration-enabled allocation keeps satisfying requests as long
        // as idle capacity suffices (§4.3 guarantee).
        assert!(c.allocate_with_defrag(100, 4).is_ok());
        assert_eq!(c.idle_gpus(), 2);
    }

    #[test]
    fn defrag_never_loses_gpus() {
        let mut c = cluster_2x8();
        c.allocate(1, 4).unwrap();
        c.allocate(2, 1).unwrap();
        c.allocate(3, 2).unwrap();
        let before = c.used_gpus();
        let migrations = c.defragment();
        assert_eq!(c.used_gpus(), before);
        // After defrag all sizes preserved.
        assert_eq!(c.placement_of(1).unwrap().num_gpus(), 4);
        assert_eq!(c.placement_of(2).unwrap().num_gpus(), 1);
        assert_eq!(c.placement_of(3).unwrap().num_gpus(), 2);
        // Migrations reference real moves.
        for m in &migrations {
            assert_ne!(m.from, m.to);
        }
    }

    #[test]
    fn resize_grow_and_shrink() {
        let mut c = cluster_2x8();
        c.allocate(1, 2).unwrap();
        let (p, _) = c.resize(1, 8).unwrap();
        assert_eq!(p.num_gpus(), 8);
        let (p, _) = c.resize(1, 1).unwrap();
        assert_eq!(p.num_gpus(), 1);
        assert_eq!(c.used_gpus(), 1);
    }

    #[test]
    fn resize_failure_rolls_back() {
        let mut c = cluster_2x8();
        c.allocate(1, 8).unwrap();
        c.allocate(2, 8).unwrap();
        let err = c.resize(1, 16).unwrap_err();
        assert!(matches!(err, ClusterError::Insufficient { .. }));
        // Owner 1 still holds its original 8 GPUs.
        assert_eq!(c.placement_of(1).unwrap().num_gpus(), 8);
        assert_eq!(c.used_gpus(), 16);
    }

    #[test]
    fn guarantee_idle_implies_allocatable() {
        // The §4.3 guarantee: any power-of-two request <= idle succeeds with
        // defrag, whatever the history.
        let mut c = ClusterState::new(ClusterSpec::with_servers(4, 8).build_topology());
        let mut owner = 0u64;
        let mut state = 12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..500 {
            let r = next();
            if r % 4 == 0 && c.num_owners() > 0 {
                let victim = *c
                    .allocations
                    .keys()
                    .nth((r / 4) as usize % c.num_owners())
                    .unwrap();
                c.release(victim).unwrap();
            } else {
                let size = 1u32 << (r % 4);
                if c.idle_gpus() >= size {
                    owner += 1;
                    let res = c.allocate_with_defrag(owner, size);
                    assert!(res.is_ok(), "round {round}: {res:?}");
                }
            }
        }
    }

    #[test]
    fn iter_yields_all_owners() {
        let mut c = cluster_2x8();
        c.allocate(3, 2).unwrap();
        c.allocate(1, 4).unwrap();
        let owners: Vec<u64> = c.iter().map(|(o, _)| o).collect();
        assert_eq!(owners, vec![1, 3]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = cluster_2x8();
        c.allocate(1, 4).unwrap();
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterState = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
