//! Property-based tests for the buddy allocator and cluster state.

use elasticflow_cluster::{BuddyAllocator, ClusterSpec, ClusterState, GpuId};
use proptest::prelude::*;

/// An operation in a random allocator schedule.
#[derive(Debug, Clone)]
enum Op {
    Alloc { size_exp: u32 },
    Free { index: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..5).prop_map(|size_exp| Op::Alloc { size_exp }),
        (0usize..64).prop_map(|index| Op::Free { index }),
    ]
}

proptest! {
    /// Blocks handed out by the buddy allocator are always aligned,
    /// disjoint, and consistent with the idle counter — under any schedule.
    #[test]
    fn buddy_blocks_stay_aligned_and_disjoint(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut buddy = BuddyAllocator::new(64);
        let mut held = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { size_exp } => {
                    let size = 1u32 << size_exp;
                    if let Ok(block) = buddy.allocate(size) {
                        prop_assert_eq!(block.size(), size);
                        prop_assert_eq!(block.offset() % size, 0);
                        held.push(block);
                    }
                }
                Op::Free { index } => {
                    if !held.is_empty() {
                        let block = held.swap_remove(index % held.len());
                        buddy.free(block);
                    }
                }
            }
            let held_total: u32 = held.iter().map(|b| b.size()).sum();
            prop_assert_eq!(buddy.idle_gpus(), 64 - held_total);
            for (i, a) in held.iter().enumerate() {
                for b in &held[i + 1..] {
                    let disjoint = a.offset() + a.size() <= b.offset()
                        || b.offset() + b.size() <= a.offset();
                    prop_assert!(disjoint, "overlap: {:?} vs {:?}", a, b);
                }
            }
        }
        // Everything frees back to one maximal block.
        for block in held {
            buddy.free(block);
        }
        prop_assert_eq!(buddy.idle_gpus(), 64);
        prop_assert_eq!(buddy.free_blocks().len(), 1);
    }

    /// The §4.3 guarantee: with migration, any power-of-two request no
    /// larger than the idle count succeeds, regardless of history.
    #[test]
    fn defrag_allocation_never_fails_with_capacity(
        ops in prop::collection::vec(op_strategy(), 1..150),
        final_exp in 0u32..6,
    ) {
        let mut cluster = ClusterState::new(ClusterSpec::with_servers(8, 8).build_topology());
        let mut owners: Vec<u64> = Vec::new();
        let mut next_owner = 0u64;
        for op in ops {
            match op {
                Op::Alloc { size_exp } => {
                    let size = 1u32 << size_exp;
                    if cluster.idle_gpus() >= size {
                        let result = cluster.allocate_with_defrag(next_owner, size);
                        prop_assert!(result.is_ok(), "{:?}", result);
                        owners.push(next_owner);
                        next_owner += 1;
                    }
                }
                Op::Free { index } => {
                    if !owners.is_empty() {
                        let owner = owners.swap_remove(index % owners.len());
                        cluster.release(owner).expect("tracked owner");
                    }
                }
            }
        }
        let size = 1u32 << final_exp;
        if cluster.idle_gpus() >= size {
            prop_assert!(cluster.allocate_with_defrag(u64::MAX, size).is_ok());
        }
    }

    /// Placements derived from buddy blocks use the tightest subtree: a
    /// block never spans more servers than strictly necessary.
    #[test]
    fn placements_are_maximally_consolidated(sizes in prop::collection::vec(0u32..4, 1..12)) {
        let topo = ClusterSpec::paper_testbed().build_topology();
        let mut cluster = ClusterState::new(topo);
        for (owner, &exp) in sizes.iter().enumerate() {
            let size = 1u32 << exp;
            if let Ok(p) = cluster.allocate(owner as u64, size) {
                let needed_servers = size.div_ceil(8);
                prop_assert_eq!(p.num_servers(), needed_servers.max(1));
            }
        }
    }

    /// The topology LCA level is monotone: adding more distant GPUs never
    /// lowers the highest crossed level.
    #[test]
    fn lca_level_is_monotone(mut ids in prop::collection::vec(0u32..128, 2..12)) {
        let topo = ClusterSpec::paper_testbed().build_topology();
        ids.sort_unstable();
        ids.dedup();
        prop_assume!(ids.len() >= 2);
        let gpus: Vec<GpuId> = ids.iter().map(|&i| GpuId::new(i)).collect();
        let mut last = 0usize;
        for k in 2..=gpus.len() {
            let level = topo.highest_level_crossed(&gpus[..k]);
            prop_assert!(level >= last);
            last = level;
        }
        // Bandwidth decreases (weakly) with level.
        let bw_pair = topo.bottleneck_bandwidth(&gpus[..2]);
        let bw_all = topo.bottleneck_bandwidth(&gpus);
        prop_assert!(bw_all <= bw_pair + f64::EPSILON);
    }
}
