//! A Philly-like public-trace preset (paper §6.1, §6.3).
//!
//! The paper additionally evaluates on the public Microsoft Philly trace
//! [Jeon et al., ATC'19]. Offline, we re-synthesize its well-published
//! distributional profile instead of shipping the CSV: Philly jobs are
//! dominated by small (1-GPU) requests, have a very heavy duration tail
//! (minutes to weeks), and arrive with strong diurnal periodicity.

use crate::{ArrivalPattern, TraceConfig};

/// Builds the Philly-like trace configuration.
///
/// Distributional shape relative to the production presets:
/// heavier 1-GPU mass (Philly's median request is a single GPU), heavier
/// duration tail (`sigma = 1.6`), diurnal arrivals.
///
/// # Example
///
/// ```
/// use elasticflow_trace::philly_like_config;
/// use elasticflow_perfmodel::Interconnect;
///
/// let trace = philly_like_config(1).generate(&Interconnect::paper_testbed());
/// assert!(!trace.jobs().is_empty());
/// ```
pub fn philly_like_config(seed: u64) -> TraceConfig {
    TraceConfig {
        name: "philly-like".to_owned(),
        seed,
        num_jobs: 1_200,
        arrival: ArrivalPattern::Diurnal {
            mean_interarrival: 25.0,
            amplitude: 0.7,
            period: 86_400.0,
        },
        duration_median: 1_500.0,
        duration_sigma: 1.6,
        // Philly: ~70 % single-GPU, long tail of distributed jobs.
        gpu_weights: vec![7.0, 1.2, 0.9, 0.6, 0.2, 0.1],
        lambda_range: (0.5, 1.5),
        best_effort_fraction: 0.0,
        soft_deadline_fraction: 0.0,
        suggested_servers: 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_perfmodel::Interconnect;

    #[test]
    fn philly_is_single_gpu_dominated() {
        let trace = philly_like_config(3).generate(&Interconnect::paper_testbed());
        let singles = trace.jobs().iter().filter(|j| j.trace_gpus == 1).count() as f64;
        let frac = singles / trace.jobs().len() as f64;
        assert!(frac > 0.55, "single-GPU fraction {frac}");
    }

    #[test]
    fn philly_tail_is_heavier_than_production() {
        let net = Interconnect::paper_testbed();
        let philly = philly_like_config(3).generate(&net);
        let prod = TraceConfig::production(2, 3).generate(&net);
        let tail = |t: &crate::Trace| {
            let mut d: Vec<f64> = t.jobs().iter().map(|j| j.trace_duration).collect();
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            d[(d.len() as f64 * 0.95) as usize] / d[d.len() / 2]
        };
        assert!(tail(&philly) > tail(&prod));
    }

    #[test]
    fn philly_name_and_determinism() {
        let cfg = philly_like_config(9);
        assert_eq!(cfg.name, "philly-like");
        let net = Interconnect::paper_testbed();
        assert_eq!(cfg.generate(&net).jobs(), cfg.generate(&net).jobs());
    }
}
