//! A small deterministic PRNG (xoshiro256** seeded by SplitMix64).
//!
//! All randomness in trace generation flows through this generator so that
//! every experiment is bit-reproducible from a single `u64` seed, on every
//! platform, with no dependency on global RNG state.

use serde::{Deserialize, Serialize};

/// Deterministic pseudo-random number generator.
///
/// # Example
///
/// ```
/// use elasticflow_trace::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = move || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Rng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// The raw xoshiro256** state, for checkpointing. Restoring it with
    /// [`Rng::from_state`] (or [`Rng::restore`]) continues the exact same
    /// stream — a snapshot taken mid-generation resumes bit-identically.
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuilds a generator from a captured [`Rng::state`].
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which xoshiro256** can never reach
    /// from a seed and would emit zeros forever.
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&w| w != 0),
            "the all-zero xoshiro256** state is unreachable and degenerate"
        );
        Rng { state }
    }

    /// Replaces this generator's state in place (see [`Rng::from_state`]).
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state.
    pub fn restore(&mut self, state: [u64; 4]) {
        *self = Rng::from_state(state);
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "uniform_usize over an empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Exponential with the given mean (inter-arrival sampling).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.uniform(); // in (0, 1]
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal with the given *median* and log-space sigma — the
    /// heavy-tailed duration distribution observed in production DL traces.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not strictly positive or `sigma` is negative.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(median > 0.0, "log-normal median must be positive");
        assert!(sigma >= 0.0, "log-normal sigma must be non-negative");
        (median.ln() + sigma * self.normal()).exp()
    }

    /// Samples an index according to the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_choice over empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(124);
        assert_ne!(Rng::new(123).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = Rng::new(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.uniform()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn log_normal_median() {
        let mut r = Rng::new(4);
        let n = 50_001;
        let mut xs: Vec<f64> = (0..n).map(|_| r.log_normal(2.0, 1.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median - 2.0).abs() < 0.1, "median {median}");
        // Heavy tail: the mean exceeds the median.
        let mean: f64 = xs.iter().sum::<f64>() / n as f64;
        assert!(mean > median);
    }

    #[test]
    fn weighted_choice_distribution() {
        let mut r = Rng::new(5);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.weighted_choice(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn normal_is_centered() {
        let mut r = Rng::new(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.normal()).sum();
        assert!((sum / n as f64).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn bad_range_panics() {
        Rng::new(0).uniform_range(2.0, 1.0);
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut r = Rng::new(99);
        for _ in 0..37 {
            r.next_u64(); // advance into the middle of the stream
        }
        let saved = r.state();
        let tail: Vec<u64> = (0..50).map(|_| r.next_u64()).collect();
        let mut resumed = Rng::from_state(saved);
        let replayed: Vec<u64> = (0..50).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, replayed);
        let mut in_place = Rng::new(0);
        in_place.restore(saved);
        assert_eq!(in_place.next_u64(), tail[0]);
    }

    #[test]
    fn state_round_trips_through_serde() {
        let mut r = Rng::new(7);
        r.next_u64();
        let json = serde_json::to_string(&r).expect("rng serializes");
        let mut back: Rng = serde_json::from_str(&json).expect("rng deserializes");
        assert_eq!(back, r);
        assert_eq!(back.next_u64(), r.next_u64());
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn zero_state_is_rejected() {
        let _ = Rng::from_state([0; 4]);
    }
}
