//! A named collection of jobs with persistence.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::{JobKind, JobSpec};

/// A workload trace: jobs sorted by submission time.
///
/// Traces serialize to JSON Lines (one job per line, with a header line)
/// so they can be inspected, diffed, and replayed.
///
/// # Example
///
/// ```
/// use elasticflow_trace::{Trace, TraceConfig};
/// use elasticflow_perfmodel::Interconnect;
///
/// let trace = TraceConfig::testbed_small(1).generate(&Interconnect::paper_testbed());
/// let dir = std::env::temp_dir().join("ef-trace-doc.jsonl");
/// trace.save(&dir)?;
/// let back = Trace::load(&dir)?;
/// assert_eq!(trace.jobs(), back.jobs());
/// # std::fs::remove_file(&dir).ok();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    jobs: Vec<JobSpec>,
}

#[derive(Serialize, Deserialize)]
struct Header {
    name: String,
    num_jobs: usize,
}

impl Trace {
    /// Creates a trace, sorting jobs by submission time.
    pub fn new(name: impl Into<String>, mut jobs: Vec<JobSpec>) -> Self {
        jobs.sort_by(|a, b| {
            a.submit_time
                .partial_cmp(&b.submit_time)
                .expect("finite submit times")
                .then(a.id.cmp(&b.id))
        });
        Trace {
            name: name.into(),
            jobs,
        }
    }

    /// The trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The jobs, ascending by submission time.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of SLO (deadline) jobs.
    pub fn num_slo_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.kind == JobKind::Slo).count()
    }

    /// Number of soft-deadline jobs (§4.4).
    pub fn num_soft_deadline_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.kind == JobKind::SoftDeadline)
            .count()
    }

    /// Number of best-effort jobs.
    pub fn num_best_effort_jobs(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.kind == JobKind::BestEffort)
            .count()
    }

    /// Time span from first submission to the last deadline-or-submission,
    /// seconds. Zero for an empty trace.
    pub fn span(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        let first = self.jobs.first().expect("nonempty").submit_time;
        let last = self
            .jobs
            .iter()
            .map(|j| {
                if j.deadline.is_finite() {
                    j.deadline
                } else {
                    j.submit_time
                }
            })
            .fold(f64::NEG_INFINITY, f64::max);
        last - first
    }

    /// Total single-GPU-equivalent work in the trace, GPU-seconds, computed
    /// from trace shapes (useful for load accounting in experiments).
    pub fn total_trace_gpu_seconds(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.trace_gpus as f64 * j.trace_duration)
            .sum()
    }

    /// Writes the trace as JSON Lines: a header line then one job per line.
    ///
    /// # Errors
    ///
    /// Any I/O or serialization error.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        let header = Header {
            name: self.name.clone(),
            num_jobs: self.jobs.len(),
        };
        serde_json::to_writer(&mut w, &header)?;
        w.write_all(b"\n")?;
        for job in &self.jobs {
            serde_json::to_writer(&mut w, job)?;
            w.write_all(b"\n")?;
        }
        w.flush()
    }

    /// Reads a trace previously written by [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Any I/O error, a missing header, or malformed job lines.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path)?;
        let mut lines = BufReader::new(file).lines();
        let header_line = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty trace file"))??;
        let header: Header = serde_json::from_str(&header_line)?;
        let mut jobs = Vec::with_capacity(header.num_jobs);
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            jobs.push(serde_json::from_str(&line)?);
        }
        if jobs.len() != header.num_jobs {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "trace header promises {} jobs but file has {}",
                    header.num_jobs,
                    jobs.len()
                ),
            ));
        }
        Ok(Trace::new(header.name, jobs))
    }
}

impl Extend<JobSpec> for Trace {
    fn extend<T: IntoIterator<Item = JobSpec>>(&mut self, iter: T) {
        self.jobs.extend(iter);
        self.jobs.sort_by(|a, b| {
            a.submit_time
                .partial_cmp(&b.submit_time)
                .expect("finite submit times")
                .then(a.id.cmp(&b.id))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobId, TraceConfig};
    use elasticflow_perfmodel::{DnnModel, Interconnect};

    fn sample_trace() -> Trace {
        TraceConfig::testbed_small(2).generate(&Interconnect::paper_testbed())
    }

    #[test]
    fn new_sorts_by_submit_time() {
        let a = JobSpec::builder(JobId::new(0), DnnModel::Bert, 64)
            .submit_time(100.0)
            .build();
        let b = JobSpec::builder(JobId::new(1), DnnModel::Bert, 64)
            .submit_time(10.0)
            .build();
        let t = Trace::new("x", vec![a, b]);
        assert_eq!(t.jobs()[0].id, JobId::new(1));
    }

    #[test]
    fn save_load_roundtrip() {
        let t = sample_trace();
        let path = std::env::temp_dir().join("ef-trace-test.jsonl");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(t, back);
    }

    #[test]
    fn load_rejects_truncated_files() {
        let t = sample_trace();
        let path = std::env::temp_dir().join("ef-trace-trunc.jsonl");
        t.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: Vec<&str> = text.lines().take(5).collect();
        std::fs::write(&path, keep.join("\n")).unwrap();
        let err = Trace::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn span_and_counts() {
        let t = sample_trace();
        assert!(t.span() > 0.0);
        assert_eq!(t.num_slo_jobs() + t.num_best_effort_jobs(), t.jobs().len());
        assert!(t.total_trace_gpu_seconds() > 0.0);
    }

    #[test]
    fn extend_keeps_order() {
        let mut t = sample_trace();
        let early = JobSpec::builder(JobId::new(999), DnnModel::Gpt2, 128)
            .submit_time(0.0)
            .build();
        t.extend([early]);
        assert_eq!(t.jobs()[0].id, JobId::new(999));
    }

    #[test]
    fn empty_trace_span_is_zero() {
        let t = Trace::new("empty", Vec::new());
        assert_eq!(t.span(), 0.0);
    }
}
