//! Synthetic production-trace generation (paper §6.1, "Workloads").

use elasticflow_perfmodel::{Interconnect, ScalingCurve, PAPER_TABLE1};
use serde::{Deserialize, Serialize};

use crate::{JobId, JobSpec, Rng, Trace};

/// Arrival process of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Memoryless arrivals with the given mean inter-arrival time (seconds).
    Poisson {
        /// Mean seconds between consecutive submissions.
        mean_interarrival: f64,
    },
    /// Poisson background plus periodic submission bursts — the "burst of
    /// job submissions" visible in the paper's Fig. 7 around hour 13.
    Bursty {
        /// Mean seconds between background submissions.
        mean_interarrival: f64,
        /// A burst fires after every `burst_every` background jobs.
        burst_every: usize,
        /// Number of near-simultaneous jobs per burst.
        burst_size: usize,
    },
    /// Poisson arrivals with a sinusoidal day/night rate modulation.
    Diurnal {
        /// Mean seconds between submissions at the average rate.
        mean_interarrival: f64,
        /// Relative amplitude of the modulation, in `[0, 1)`.
        amplitude: f64,
        /// Period of the modulation, seconds (e.g. 86 400 for a day).
        period: f64,
    },
}

/// Configuration of one synthetic trace.
///
/// # Example
///
/// ```
/// use elasticflow_trace::TraceConfig;
/// use elasticflow_perfmodel::Interconnect;
///
/// let trace = TraceConfig::testbed_large(7).generate(&Interconnect::paper_testbed());
/// assert_eq!(trace.jobs().len(), 195);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Human-readable trace name.
    pub name: String,
    /// PRNG seed; equal configs with equal seeds generate identical traces.
    pub seed: u64,
    /// Number of jobs to generate.
    pub num_jobs: usize,
    /// Arrival process.
    pub arrival: ArrivalPattern,
    /// Median of the log-normal duration distribution, seconds.
    pub duration_median: f64,
    /// Log-space sigma of the duration distribution (tail heaviness).
    pub duration_sigma: f64,
    /// Weights over the power-of-two GPU ladder `[1, 2, 4, 8, 16, 32, ...]`
    /// for the original trace's GPU request.
    pub gpu_weights: Vec<f64>,
    /// Deadline tightness range; `lambda ~ U[lo, hi)` (paper: `[0.5, 1.5]`).
    pub lambda_range: (f64, f64),
    /// Fraction of jobs submitted without a deadline (best-effort).
    pub best_effort_fraction: f64,
    /// Fraction of jobs submitted with *soft* deadlines (§4.4): never
    /// dropped, finished as early as possible when their deadline cannot
    /// be guaranteed.
    #[serde(default)]
    pub soft_deadline_fraction: f64,
    /// Number of 8-GPU servers the trace is sized for (documentation and
    /// experiment pairing; the generator itself does not need it).
    pub suggested_servers: u32,
}

impl TraceConfig {
    /// The 25-job trace of the paper's small-testbed comparison (Fig. 6a),
    /// sized for 4 servers x 8 GPUs.
    pub fn testbed_small(seed: u64) -> Self {
        TraceConfig {
            name: format!("testbed-small-{seed}"),
            seed,
            num_jobs: 25,
            arrival: ArrivalPattern::Poisson {
                mean_interarrival: 170.0,
            },
            duration_median: 2_400.0,
            duration_sigma: 1.0,
            gpu_weights: vec![2.5, 2.0, 2.0, 2.5, 1.0],
            lambda_range: (0.5, 1.5),
            best_effort_fraction: 0.0,
            soft_deadline_fraction: 0.0,
            suggested_servers: 4,
        }
    }

    /// The 195-job trace of the paper's large-testbed comparison (Fig. 6b),
    /// sized for 16 servers x 8 GPUs, with a submission burst like Fig. 7's.
    pub fn testbed_large(seed: u64) -> Self {
        TraceConfig {
            name: format!("testbed-large-{seed}"),
            seed,
            num_jobs: 195,
            arrival: ArrivalPattern::Bursty {
                mean_interarrival: 50.0,
                burst_every: 60,
                burst_size: 12,
            },
            duration_median: 3_600.0,
            duration_sigma: 1.2,
            gpu_weights: vec![2.0, 2.0, 2.0, 2.5, 1.0, 0.3],
            lambda_range: (0.5, 1.5),
            best_effort_fraction: 0.0,
            soft_deadline_fraction: 0.0,
            suggested_servers: 16,
        }
    }

    /// One of ten production-cluster-like presets (paper §6.1 collected
    /// traces from ten clusters with different sizes and loads). `idx` in
    /// `0..10`; higher indices are larger, more lightly loaded clusters —
    /// the regime where the paper observes EDF becoming competitive
    /// (traces #9 and #10).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 10`.
    pub fn production(idx: usize, seed: u64) -> Self {
        assert!(idx < 10, "production preset index out of range: {idx}");
        // (jobs, mean interarrival s, duration median s, sigma, servers)
        // Loads descend from ~1.5x capacity (trace 1) to ~0.45x (trace
        // 10): the paper's traces 9-10 are the lightly loaded clusters
        // where plain EDF becomes competitive.
        let presets: [(usize, f64, f64, f64, u32); 10] = [
            (260, 324.0, 4_800.0, 1.3, 8),
            (320, 267.0, 4_200.0, 1.2, 8),
            (400, 70.0, 3_600.0, 1.2, 16),
            (480, 75.0, 3_900.0, 1.1, 16),
            (560, 85.0, 3_300.0, 1.3, 16),
            (640, 45.0, 3_600.0, 1.2, 32),
            (720, 40.0, 3_000.0, 1.1, 32),
            (800, 50.0, 3_300.0, 1.2, 32),
            (900, 55.0, 2_400.0, 1.0, 64),
            (1_000, 60.0, 2_100.0, 1.0, 64),
        ];
        let (num_jobs, mean_interarrival, duration_median, duration_sigma, servers) = presets[idx];
        let arrival = if idx % 3 == 1 {
            ArrivalPattern::Bursty {
                mean_interarrival,
                burst_every: 50,
                burst_size: 10,
            }
        } else if idx % 3 == 2 {
            ArrivalPattern::Diurnal {
                mean_interarrival,
                amplitude: 0.6,
                period: 86_400.0,
            }
        } else {
            ArrivalPattern::Poisson { mean_interarrival }
        };
        TraceConfig {
            name: format!("production-{}", idx + 1),
            seed: seed ^ (idx as u64).wrapping_mul(0x9e3779b97f4a7c15),
            num_jobs,
            arrival,
            duration_median,
            duration_sigma,
            gpu_weights: vec![2.5, 2.0, 2.0, 2.5, 1.0, 0.3],
            lambda_range: (0.5, 1.5),
            best_effort_fraction: 0.0,
            soft_deadline_fraction: 0.0,
            suggested_servers: servers,
        }
    }

    /// Sets the fraction of best-effort jobs (paper §6.5 varies 10–50 %).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_best_effort_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction outside [0, 1]");
        self.best_effort_fraction = fraction;
        self
    }

    /// Sets the fraction of soft-deadline jobs (§4.4).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_soft_deadline_fraction(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction outside [0, 1]");
        self.soft_deadline_fraction = fraction;
        self
    }

    /// Overrides the number of jobs.
    pub fn with_num_jobs(mut self, num_jobs: usize) -> Self {
        self.num_jobs = num_jobs;
        self
    }

    /// Overrides the deadline-tightness range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or non-positive.
    pub fn with_lambda_range(mut self, lo: f64, hi: f64) -> Self {
        assert!(0.0 < lo && lo <= hi, "bad lambda range [{lo}, {hi})");
        self.lambda_range = (lo, hi);
        self
    }

    /// Generates the trace: draws arrivals, models, batch sizes, GPU
    /// requests, durations and deadlines, and converts durations into
    /// iteration counts via the scaling curves (the paper's recipe:
    /// `iterations = duration x throughput(trace_gpus)`).
    pub fn generate(&self, net: &Interconnect) -> Trace {
        let mut rng = Rng::new(self.seed);
        let mut jobs = Vec::with_capacity(self.num_jobs);
        let mut now = 0.0f64;
        let mut since_burst = 0usize;
        // Flatten Table 1 into (model, batch) choices.
        let mut configs = Vec::new();
        for (model, batches) in PAPER_TABLE1 {
            for &b in batches {
                configs.push((model, b));
            }
        }
        let mut pending_burst = 0usize;
        for i in 0..self.num_jobs {
            // --- arrival ---
            if pending_burst > 0 {
                pending_burst -= 1;
                now += rng.uniform_range(0.0, 30.0); // near-simultaneous
            } else {
                match &self.arrival {
                    ArrivalPattern::Poisson { mean_interarrival } => {
                        now += rng.exponential(*mean_interarrival);
                    }
                    ArrivalPattern::Bursty {
                        mean_interarrival,
                        burst_every,
                        burst_size,
                    } => {
                        now += rng.exponential(*mean_interarrival);
                        since_burst += 1;
                        if since_burst >= *burst_every {
                            since_burst = 0;
                            pending_burst = burst_size.saturating_sub(1);
                        }
                    }
                    ArrivalPattern::Diurnal {
                        mean_interarrival,
                        amplitude,
                        period,
                    } => {
                        let phase = (now / period) * std::f64::consts::TAU;
                        let scale = 1.0 + amplitude * phase.sin();
                        now += rng.exponential(mean_interarrival * scale.max(0.1));
                    }
                }
            }
            // --- job shape ---
            let (model, global_batch) = configs[rng.uniform_usize(configs.len())];
            let gpu_idx = rng.weighted_choice(&self.gpu_weights);
            let trace_gpus = 1u32 << gpu_idx;
            let duration = rng
                .log_normal(self.duration_median, self.duration_sigma)
                .clamp(60.0, 30.0 * 86_400.0);
            // Iterations from duration x throughput at the trace GPU count
            // (clamped into the curve's domain like the paper's profiler).
            let curve = ScalingCurve::build(model, global_batch, net);
            let eff_gpus = trace_gpus.min(curve.max_gpus());
            let iters_per_sec = curve
                .iters_per_sec(eff_gpus)
                .expect("eff_gpus is a power of two in the domain");
            let iterations = (duration * iters_per_sec).max(1.0);
            // --- deadline ---
            let lambda = rng.uniform_range(self.lambda_range.0, self.lambda_range.1);
            let kind_draw = rng.uniform();
            let mut builder = JobSpec::builder(JobId::new(i as u64), model, global_batch)
                .iterations(iterations)
                .submit_time(now)
                .trace_shape(eff_gpus, duration);
            if kind_draw < self.best_effort_fraction {
                // best-effort: leave the infinite default deadline
            } else if kind_draw < self.best_effort_fraction + self.soft_deadline_fraction {
                builder = builder.soft_deadline(now + lambda * duration);
            } else {
                builder = builder.deadline(now + lambda * duration);
            }
            jobs.push(builder.build());
        }
        Trace::new(self.name.clone(), jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobKind;

    fn net() -> Interconnect {
        Interconnect::paper_testbed()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TraceConfig::testbed_large(7).generate(&net());
        let b = TraceConfig::testbed_large(7).generate(&net());
        assert_eq!(a.jobs(), b.jobs());
        let c = TraceConfig::testbed_large(8).generate(&net());
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    fn arrivals_are_sorted_and_ids_unique() {
        let t = TraceConfig::testbed_large(1).generate(&net());
        let mut last = 0.0;
        for (i, j) in t.jobs().iter().enumerate() {
            assert!(j.submit_time >= last);
            assert_eq!(j.id.raw(), i as u64);
            last = j.submit_time;
        }
    }

    #[test]
    fn lambda_within_configured_range() {
        let t = TraceConfig::testbed_small(3).generate(&net());
        for j in t.jobs() {
            let lambda = j.lambda().expect("all SLO with known durations");
            assert!((0.5..1.5).contains(&lambda), "lambda {lambda}");
        }
    }

    #[test]
    fn iterations_match_duration_times_throughput() {
        let t = TraceConfig::testbed_small(4).generate(&net());
        for j in t.jobs() {
            let curve = ScalingCurve::build(j.model, j.global_batch, &net());
            let tput = curve.iters_per_sec(j.trace_gpus).unwrap();
            let expect = (j.trace_duration * tput).max(1.0);
            assert!((j.iterations - expect).abs() / expect < 1e-9);
        }
    }

    #[test]
    fn best_effort_fraction_respected() {
        let t = TraceConfig::testbed_large(5)
            .with_num_jobs(1000)
            .with_best_effort_fraction(0.3)
            .generate(&net());
        let be = t
            .jobs()
            .iter()
            .filter(|j| j.kind == JobKind::BestEffort)
            .count();
        let frac = be as f64 / 1000.0;
        assert!((frac - 0.3).abs() < 0.06, "fraction {frac}");
    }

    #[test]
    fn production_presets_cover_a_size_range() {
        let mut sizes = Vec::new();
        for i in 0..10 {
            let cfg = TraceConfig::production(i, 1);
            sizes.push(cfg.num_jobs);
            assert!(cfg.suggested_servers.is_power_of_two());
        }
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        assert!(*sizes.first().unwrap() >= 260);
    }

    #[test]
    fn bursty_pattern_creates_clusters_of_arrivals() {
        let cfg = TraceConfig::testbed_large(11);
        let t = cfg.generate(&net());
        // Find at least one window of 10 consecutive jobs spanning < 10 min.
        let times: Vec<f64> = t.jobs().iter().map(|j| j.submit_time).collect();
        let has_burst = times.windows(10).any(|w| w[9] - w[0] < 600.0);
        assert!(has_burst, "expected a submission burst");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn production_index_checked() {
        let _ = TraceConfig::production(10, 0);
    }
}
