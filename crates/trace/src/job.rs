//! Training job specifications as submitted to the platform.

use std::fmt;

use elasticflow_perfmodel::DnnModel;
use serde::{Deserialize, Serialize};

/// Unique identifier of a training job within one trace / platform run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct JobId(u64);

impl JobId {
    /// Creates a job id from a raw integer.
    pub fn new(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw integer value (also used as the cluster owner tag).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl From<u64> for JobId {
    fn from(raw: u64) -> Self {
        JobId(raw)
    }
}

/// Whether a job carries a deadline SLO, a soft deadline, or runs
/// best-effort (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobKind {
    /// The job has a hard deadline; ElasticFlow either guarantees it or
    /// drops the job at admission.
    Slo,
    /// The job has a deadline worth meeting, but finishing late is still
    /// useful: never dropped, guaranteed when possible, otherwise finished
    /// as early as leftover capacity allows (paper §4.4, "hard vs. soft
    /// deadlines").
    SoftDeadline,
    /// No deadline; scheduled with leftover resources, minimizing JCT.
    BestEffort,
}

impl JobKind {
    /// `true` for kinds that carry a (finite) deadline.
    pub fn has_deadline(self) -> bool {
        matches!(self, JobKind::Slo | JobKind::SoftDeadline)
    }
}

/// A training job as submitted through the serverless interface (§3.1):
/// model + hyper-parameters + termination condition + deadline. The user
/// never specifies a GPU count — `trace_gpus` records what the *original
/// server-centric trace* requested and is only consumed by the non-elastic
/// baseline schedulers.
///
/// # Example
///
/// ```
/// use elasticflow_trace::{JobId, JobKind, JobSpec};
/// use elasticflow_perfmodel::DnnModel;
///
/// let job = JobSpec::builder(JobId::new(1), DnnModel::Bert, 128)
///     .iterations(50_000.0)
///     .submit_time(0.0)
///     .deadline(3_600.0 * 8.0)
///     .build();
/// assert_eq!(job.kind, JobKind::Slo);
/// assert!(job.is_slo());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id.
    pub id: JobId,
    /// The DNN model to train.
    pub model: DnnModel,
    /// Global batch size (a hyper-parameter; the platform derives local
    /// batch sizes from it).
    pub global_batch: u32,
    /// Termination condition: maximum number of iterations to run.
    pub iterations: f64,
    /// Submission time, seconds since trace start.
    pub submit_time: f64,
    /// Absolute deadline, seconds since trace start
    /// (`f64::INFINITY` for best-effort jobs; encoded as `null` in JSON).
    #[serde(with = "infinite_as_null")]
    pub deadline: f64,
    /// GPU count the job used in the original server-centric trace
    /// (consumed only by non-elastic baselines).
    pub trace_gpus: u32,
    /// Duration the job ran for in the original trace at `trace_gpus`,
    /// seconds (the basis of the deadline-tightness recipe).
    pub trace_duration: f64,
    /// SLO or best-effort.
    pub kind: JobKind,
}

impl JobSpec {
    /// Starts building a job spec with the mandatory fields.
    pub fn builder(id: JobId, model: DnnModel, global_batch: u32) -> JobSpecBuilder {
        JobSpecBuilder {
            spec: JobSpec {
                id,
                model,
                global_batch,
                iterations: 1.0,
                submit_time: 0.0,
                deadline: f64::INFINITY,
                trace_gpus: 1,
                trace_duration: 0.0,
                kind: JobKind::BestEffort,
            },
        }
    }

    /// `true` for deadline (SLO) jobs.
    pub fn is_slo(&self) -> bool {
        self.kind == JobKind::Slo
    }

    /// Time between submission and deadline (infinite for best-effort).
    pub fn deadline_window(&self) -> f64 {
        self.deadline - self.submit_time
    }

    /// The deadline tightness `lambda = window / trace_duration` from the
    /// paper's §6.1 recipe; `None` when the trace duration is unknown or
    /// the job is best-effort.
    pub fn lambda(&self) -> Option<f64> {
        if self.kind == JobKind::BestEffort || self.trace_duration <= 0.0 {
            None
        } else {
            Some(self.deadline_window() / self.trace_duration)
        }
    }
}

/// Serializes `f64::INFINITY` as `null` (JSON has no infinity literal).
mod infinite_as_null {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_some(v)
        } else {
            s.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        Ok(Option::<f64>::deserialize(d)?.unwrap_or(f64::INFINITY))
    }
}

/// Builder for [`JobSpec`]; setting a finite deadline turns the job into an
/// SLO job.
#[derive(Debug, Clone)]
pub struct JobSpecBuilder {
    spec: JobSpec,
}

impl JobSpecBuilder {
    /// Sets the termination condition (maximum iterations).
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is not strictly positive and finite.
    pub fn iterations(mut self, iterations: f64) -> Self {
        assert!(
            iterations.is_finite() && iterations > 0.0,
            "iterations must be positive and finite"
        );
        self.spec.iterations = iterations;
        self
    }

    /// Sets the submission time (seconds since trace start).
    ///
    /// # Panics
    ///
    /// Panics if `submit_time` is negative or not finite.
    pub fn submit_time(mut self, submit_time: f64) -> Self {
        assert!(
            submit_time.is_finite() && submit_time >= 0.0,
            "submit time must be non-negative and finite"
        );
        self.spec.submit_time = submit_time;
        self
    }

    /// Sets an absolute deadline, making this an SLO job.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is not finite (use the default for best-effort).
    pub fn deadline(mut self, deadline: f64) -> Self {
        assert!(
            deadline.is_finite(),
            "use best-effort for infinite deadlines"
        );
        self.spec.deadline = deadline;
        self.spec.kind = JobKind::Slo;
        self
    }

    /// Sets an absolute *soft* deadline: worth meeting but never dropped.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is not finite.
    pub fn soft_deadline(mut self, deadline: f64) -> Self {
        assert!(
            deadline.is_finite(),
            "use best-effort for infinite deadlines"
        );
        self.spec.deadline = deadline;
        self.spec.kind = JobKind::SoftDeadline;
        self
    }

    /// Records the original trace's GPU count and duration.
    ///
    /// # Panics
    ///
    /// Panics if `gpus` is zero.
    pub fn trace_shape(mut self, gpus: u32, duration: f64) -> Self {
        assert!(gpus > 0, "trace GPU count must be positive");
        self.spec.trace_gpus = gpus;
        self.spec.trace_duration = duration;
        self
    }

    /// Finalizes the spec.
    ///
    /// # Panics
    ///
    /// Panics if the deadline precedes the submission time.
    pub fn build(self) -> JobSpec {
        assert!(
            self.spec.deadline > self.spec.submit_time,
            "deadline must fall after submission"
        );
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_to_best_effort() {
        let job = JobSpec::builder(JobId::new(1), DnnModel::ResNet50, 64).build();
        assert_eq!(job.kind, JobKind::BestEffort);
        assert!(job.deadline.is_infinite());
        assert!(job.lambda().is_none());
    }

    #[test]
    fn deadline_makes_slo() {
        let job = JobSpec::builder(JobId::new(2), DnnModel::Vgg16, 128)
            .submit_time(100.0)
            .deadline(500.0)
            .trace_shape(4, 400.0)
            .build();
        assert!(job.is_slo());
        assert_eq!(job.deadline_window(), 400.0);
        assert!((job.lambda().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "after submission")]
    fn deadline_before_submit_panics() {
        let _ = JobSpec::builder(JobId::new(3), DnnModel::Bert, 64)
            .submit_time(100.0)
            .deadline(50.0)
            .build();
    }

    #[test]
    fn job_id_display_and_raw() {
        let id = JobId::new(9);
        assert_eq!(id.to_string(), "job9");
        assert_eq!(id.raw(), 9);
        assert_eq!(JobId::from(9u64), id);
    }

    #[test]
    fn serde_roundtrip() {
        let job = JobSpec::builder(JobId::new(4), DnnModel::Gpt2, 256)
            .iterations(1e6)
            .deadline(7200.0)
            .build();
        let json = serde_json::to_string(&job).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(job, back);
    }

    #[test]
    fn best_effort_roundtrips_infinite_deadline() {
        // JSON cannot encode infinity as a number; ensure our encoding
        // choice (null via Option is not used — serde_json emits `null` for
        // f64::INFINITY) survives.
        let job = JobSpec::builder(JobId::new(5), DnnModel::Bert, 64).build();
        let json = serde_json::to_string(&job).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.kind, JobKind::BestEffort);
    }
}
