//! Workload traces for ElasticFlow.
//!
//! The paper evaluates on two-month production traces from ten clusters
//! (164–2 783 GPUs, 260–15 802 jobs each) plus the public Microsoft Philly
//! trace (§6.1). Those production traces are proprietary, so this crate
//! provides a *synthetic* trace generator that reproduces their statistical
//! shape — Poisson/bursty arrivals, heavy-tailed (log-normal) durations,
//! power-of-two GPU requests — under explicit seeds, plus a Philly-like
//! preset with a distinct distributional profile.
//!
//! Deadlines follow the paper's §6.1 recipe exactly: each job's deadline is
//! `submission + lambda * duration` with `lambda ~ U[0.5, 1.5]`, and the
//! number of iterations is derived from the trace duration and the
//! pre-measured throughput at the trace's GPU count.
//!
//! # Example
//!
//! ```
//! use elasticflow_trace::{TraceConfig, JobKind};
//! use elasticflow_perfmodel::Interconnect;
//!
//! let trace = TraceConfig::testbed_small(42).generate(&Interconnect::paper_testbed());
//! assert_eq!(trace.jobs().len(), 25);
//! assert!(trace.jobs().iter().all(|j| j.kind == JobKind::Slo));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod job;
mod philly;
mod rng;
mod trace;

pub use generator::{ArrivalPattern, TraceConfig};
pub use job::{JobId, JobKind, JobSpec};
pub use philly::philly_like_config;
pub use rng::Rng;
pub use trace::Trace;
