//! Property-based tests for trace generation.

use elasticflow_perfmodel::{Interconnect, ScalingCurve};
use elasticflow_trace::{ArrivalPattern, JobKind, TraceConfig};
use proptest::prelude::*;

fn any_arrival() -> impl Strategy<Value = ArrivalPattern> {
    prop_oneof![
        (60.0f64..1_000.0)
            .prop_map(|mean_interarrival| ArrivalPattern::Poisson { mean_interarrival }),
        (60.0f64..1_000.0, 5usize..50, 2usize..15).prop_map(
            |(mean_interarrival, burst_every, burst_size)| ArrivalPattern::Bursty {
                mean_interarrival,
                burst_every,
                burst_size,
            }
        ),
        (60.0f64..1_000.0, 0.0f64..0.9).prop_map(|(mean_interarrival, amplitude)| {
            ArrivalPattern::Diurnal {
                mean_interarrival,
                amplitude,
                period: 86_400.0,
            }
        }),
    ]
}

fn any_config() -> impl Strategy<Value = TraceConfig> {
    (
        any_arrival(),
        1usize..120,
        600.0f64..20_000.0,
        0.2f64..1.8,
        0.0f64..0.4,
        0.0f64..0.4,
        any::<u64>(),
    )
        .prop_map(
            |(arrival, num_jobs, duration_median, duration_sigma, be, soft, seed)| {
                let mut cfg = TraceConfig::testbed_small(seed);
                cfg.arrival = arrival;
                cfg.num_jobs = num_jobs;
                cfg.duration_median = duration_median;
                cfg.duration_sigma = duration_sigma;
                cfg.best_effort_fraction = be;
                cfg.soft_deadline_fraction = soft;
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated trace satisfies the structural invariants the
    /// simulator depends on.
    #[test]
    fn generated_traces_are_well_formed(cfg in any_config()) {
        let net = Interconnect::paper_testbed();
        let trace = cfg.generate(&net);
        prop_assert_eq!(trace.jobs().len(), cfg.num_jobs);
        let mut last_submit = 0.0f64;
        for job in trace.jobs() {
            prop_assert!(job.submit_time >= last_submit);
            last_submit = job.submit_time;
            prop_assert!(job.iterations >= 1.0 && job.iterations.is_finite());
            prop_assert!(job.trace_gpus.is_power_of_two());
            prop_assert!(job.global_batch.is_power_of_two());
            match job.kind {
                JobKind::BestEffort => prop_assert!(job.deadline.is_infinite()),
                JobKind::Slo | JobKind::SoftDeadline => {
                    prop_assert!(job.deadline.is_finite());
                    let lambda = job.lambda().expect("finite duration");
                    prop_assert!(
                        (cfg.lambda_range.0 - 1e-9..cfg.lambda_range.1 + 1e-9)
                            .contains(&lambda)
                    );
                }
            }
            // Iterations must match duration x throughput at the trace
            // shape (the paper's §6.1 recipe).
            let curve = ScalingCurve::build(job.model, job.global_batch, &net);
            let tput = curve.iters_per_sec(job.trace_gpus).expect("in domain");
            let expected = (job.trace_duration * tput).max(1.0);
            prop_assert!((job.iterations - expected).abs() / expected < 1e-9);
        }
    }

    /// Generation is a pure function of the config.
    #[test]
    fn generation_is_deterministic(cfg in any_config()) {
        let net = Interconnect::paper_testbed();
        let a = cfg.generate(&net);
        let b = cfg.generate(&net);
        prop_assert_eq!(a.jobs(), b.jobs());
    }

    /// Save/load round-trips exactly for arbitrary generated traces.
    #[test]
    fn save_load_roundtrip(cfg in any_config()) {
        let net = Interconnect::paper_testbed();
        let trace = cfg.generate(&net);
        let path = std::env::temp_dir().join(format!(
            "ef-prop-trace-{}-{}.jsonl",
            std::process::id(),
            cfg.seed
        ));
        trace.save(&path).expect("save");
        let back = elasticflow_trace::Trace::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(trace, back);
    }
}
