//! Property-based tests for the performance model.

use elasticflow_cluster::PlacementShape;
use elasticflow_perfmodel::{
    iteration_time, DnnModel, Interconnect, OverheadModel, ScalingCurve, ScalingEvent,
};
use proptest::prelude::*;

fn any_model() -> impl Strategy<Value = DnnModel> {
    prop::sample::select(DnnModel::ALL.to_vec())
}

fn any_batch() -> impl Strategy<Value = u32> {
    (5u32..9).prop_map(|e| 1 << e) // 32..256
}

proptest! {
    /// Every generated curve is positive, concave up to the knee, and
    /// monotone non-decreasing before it.
    #[test]
    fn curves_are_well_formed(model in any_model(), batch in any_batch()) {
        let curve = ScalingCurve::build(model, batch, &Interconnect::paper_testbed());
        prop_assert!(curve.is_concave());
        let knee = curve.knee();
        let mut last = 0.0;
        for g in curve.ladder() {
            let t = curve.iters_per_sec(g).unwrap();
            prop_assert!(t.is_finite() && t > 0.0);
            if g <= knee {
                prop_assert!(t + 1e-12 >= last);
                last = t;
            }
        }
    }

    /// Resource usage (GPU-time for fixed work) is minimized at one GPU —
    /// the diminishing-returns property §4.1 builds on.
    #[test]
    fn one_gpu_minimizes_gpu_time(model in any_model(), batch in any_batch(), work in 1.0f64..1e6) {
        let curve = ScalingCurve::build(model, batch, &Interconnect::paper_testbed());
        let base = curve.gpu_time(1, work).unwrap();
        for g in curve.ladder() {
            if let Some(usage) = curve.gpu_time(g, work) {
                prop_assert!(usage + 1e-9 >= base);
            }
        }
    }

    /// Consolidation dominates: for a fixed worker count, fewer servers is
    /// never slower.
    #[test]
    fn consolidation_is_never_slower(model in any_model(), batch in any_batch()) {
        let net = Interconnect::paper_testbed();
        let profile = model.profile();
        for workers in [2u32, 4, 8] {
            if workers > batch {
                continue;
            }
            let mut last_time = f64::INFINITY;
            // Walk from most-spread to most-consolidated.
            let mut servers = workers;
            while servers >= 1 {
                let shape = PlacementShape::new(servers, workers / servers);
                let t = iteration_time(&profile, batch, shape, &net).total;
                prop_assert!(t <= last_time + 1e-12, "{shape} slower than more spread");
                last_time = t;
                servers /= 2;
            }
        }
    }

    /// Iteration time decomposition is consistent: total = compute +
    /// exposed communication, all non-negative.
    #[test]
    fn iteration_breakdown_is_consistent(
        model in any_model(),
        batch in any_batch(),
        workers_exp in 0u32..4,
    ) {
        let workers = 1u32 << workers_exp;
        prop_assume!(workers <= batch);
        let b = iteration_time(
            &model.profile(),
            batch,
            PlacementShape::consolidated(workers, 8),
            &Interconnect::paper_testbed(),
        );
        prop_assert!(b.compute > 0.0);
        prop_assert!(b.exposed_comm >= 0.0);
        prop_assert!((b.total - (b.compute + b.exposed_comm)).abs() < 1e-12);
    }

    /// Scaling pauses are non-negative, zero only for no-ops, and grow
    /// with model size.
    #[test]
    fn overheads_behave(model in any_model(), from_exp in 0u32..4, to_exp in 0u32..4) {
        let m = OverheadModel::paper_calibrated();
        let event = ScalingEvent::scale(1 << from_exp, 1 << to_exp);
        let pause = m.pause_seconds(&model.profile(), event);
        if event.is_real_change() {
            prop_assert!(pause > 0.0);
        } else {
            prop_assert_eq!(pause, 0.0);
        }
        prop_assert!(pause < 120.0, "pause {pause} implausibly large");
    }
}
