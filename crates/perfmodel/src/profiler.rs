//! Simulated pre-run throughput profiling (paper §5 and Fig. 12a).
//!
//! ElasticFlow pre-runs every new (model, batch size) configuration on real
//! GPUs to measure its scaling curve, stopping as soon as adding GPUs stops
//! increasing throughput. We simulate the same procedure against the
//! analytic model and charge the wall-clock time such a pre-run would take,
//! which is what the paper reports in Fig. 12(a).

use serde::{Deserialize, Serialize};

use crate::{DnnModel, Interconnect, ScalingCurve};

/// Result of profiling one (model, global batch) configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// The measured scaling curve (truncated at the first non-improving
    /// worker count, like the paper's early-stopping rule).
    pub curve: ScalingCurve,
    /// Wall-clock seconds the pre-run consumed.
    pub profiling_seconds: f64,
    /// Worker counts that were actually probed.
    pub probed_gpus: Vec<u32>,
}

/// A simulated throughput profiler.
///
/// # Example
///
/// ```
/// use elasticflow_perfmodel::{DnnModel, Interconnect, Profiler};
///
/// let profiler = Profiler::new(Interconnect::paper_testbed());
/// let report = profiler.profile(DnnModel::ResNet50, 128);
/// assert!(report.profiling_seconds > 0.0);
/// assert!(report.curve.is_concave());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profiler {
    net: Interconnect,
    warmup_iterations: u32,
    measured_iterations: u32,
    max_workers: u32,
}

impl Profiler {
    /// Default number of warm-up iterations per probed configuration.
    pub const DEFAULT_WARMUP: u32 = 20;
    /// Default number of measured iterations per probed configuration.
    pub const DEFAULT_MEASURED: u32 = 50;

    /// Creates a profiler over the given interconnect.
    pub fn new(net: Interconnect) -> Self {
        Profiler {
            net,
            warmup_iterations: Self::DEFAULT_WARMUP,
            measured_iterations: Self::DEFAULT_MEASURED,
            max_workers: ScalingCurve::DEFAULT_MAX_WORKERS,
        }
    }

    /// Sets how many iterations are run per probed worker count
    /// (warm-up + measured).
    pub fn iterations(mut self, warmup: u32, measured: u32) -> Self {
        self.warmup_iterations = warmup;
        self.measured_iterations = measured;
        self
    }

    /// Caps the probed worker ladder.
    pub fn max_workers(mut self, max_workers: u32) -> Self {
        self.max_workers = max_workers;
        self
    }

    /// Profiles one (model, global batch) configuration: walks the
    /// power-of-two ladder, runs `warmup + measured` iterations at each
    /// count, and stops after the first count that does not improve
    /// throughput (the paper's early-stopping rule).
    ///
    /// # Panics
    ///
    /// Panics if `global_batch` is zero.
    pub fn profile(&self, model: DnnModel, global_batch: u32) -> ProfileReport {
        let full = ScalingCurve::build_with_max(model, global_batch, &self.net, self.max_workers);
        let iters = (self.warmup_iterations + self.measured_iterations) as f64;
        let mut seconds = 0.0;
        let mut probed = Vec::new();
        let mut kept = Vec::new();
        let mut best = 0.0f64;
        for point in full.points() {
            probed.push(point.gpus);
            seconds += iters / point.iters_per_sec;
            kept.push(*point);
            if point.iters_per_sec <= best {
                break; // adding GPUs stopped helping
            }
            best = point.iters_per_sec;
        }
        ProfileReport {
            curve: ScalingCurve::from_points(model, global_batch, kept),
            profiling_seconds: seconds,
            probed_gpus: probed,
        }
    }

    /// Profiles every batch size of Table 1 for one model and returns the
    /// total pre-run cost — one bar of the paper's Fig. 12(a).
    pub fn profile_model_all_batches(&self, model: DnnModel) -> f64 {
        crate::PAPER_TABLE1
            .iter()
            .find(|(m, _)| *m == model)
            .map(|(_, batches)| {
                batches
                    .iter()
                    .map(|&b| self.profile(model, b).profiling_seconds)
                    .sum()
            })
            .unwrap_or(0.0)
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new(Interconnect::paper_testbed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_stops_at_the_knee() {
        let profiler = Profiler::default();
        let report = profiler.profile(DnnModel::Vgg16, 256);
        let knee = report.curve.knee();
        // The profiler probes one step past the knee at most.
        let last = *report.probed_gpus.last().unwrap();
        assert!(last <= knee * 2, "probed {last} but knee is {knee}");
    }

    #[test]
    fn profiling_cost_is_minutes_not_hours() {
        // Paper Fig 12(a): profiling overhead per model is marginal
        // relative to hours-long training jobs.
        let profiler = Profiler::default();
        for model in DnnModel::ALL {
            let seconds = profiler.profile_model_all_batches(model);
            assert!(seconds > 0.0);
            assert!(
                seconds < 3600.0,
                "{model} profiling {seconds:.0}s exceeds an hour"
            );
        }
    }

    #[test]
    fn slower_models_cost_more_to_profile() {
        let profiler = Profiler::default();
        let fast = profiler.profile(DnnModel::ResNet50, 64).profiling_seconds;
        let slow = profiler.profile(DnnModel::Gpt2, 256).profiling_seconds;
        assert!(slow > fast);
    }

    #[test]
    fn custom_iteration_counts_scale_cost() {
        let base = Profiler::default().iterations(10, 10);
        let double = Profiler::default().iterations(20, 20);
        let a = base.profile(DnnModel::Bert, 128).profiling_seconds;
        let b = double.profile(DnnModel::Bert, 128).profiling_seconds;
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn probed_curve_is_usable_by_scheduler() {
        let report = Profiler::default().profile(DnnModel::InceptionV3, 128);
        assert!(report.curve.iters_per_sec(1).is_some());
        assert!(report.curve.is_concave());
    }
}
