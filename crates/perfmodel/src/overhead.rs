//! Scaling and migration overheads (paper §5 and Fig. 12b).
//!
//! ElasticFlow scales a job by checkpointing its parameters, adjusting the
//! worker set, and restoring — "suspend, restart on a new set of GPUs". The
//! paper measures this pause at a few seconds to tens of seconds per event,
//! dominated by PyTorch checkpoint/restore, and its simulator charges the
//! measured pause on every scheduling event. We model the same cost:
//! checkpoint + restore proportional to model state size, plus a per-worker
//! process-group setup term.

use serde::{Deserialize, Serialize};

use crate::ModelProfile;

/// One elastic scaling or migration event to be charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalingEvent {
    /// Worker count before the event (0 = the job was suspended/new).
    pub from_gpus: u32,
    /// Worker count after the event (0 = the job is being suspended).
    pub to_gpus: u32,
    /// `true` when the GPU *set* changes without a size change
    /// (defragmentation migration).
    pub migration: bool,
}

impl ScalingEvent {
    /// A scale event from `from_gpus` to `to_gpus` workers.
    pub fn scale(from_gpus: u32, to_gpus: u32) -> Self {
        ScalingEvent {
            from_gpus,
            to_gpus,
            migration: false,
        }
    }

    /// A same-size migration of `gpus` workers to a different GPU set.
    pub fn migrate(gpus: u32) -> Self {
        ScalingEvent {
            from_gpus: gpus,
            to_gpus: gpus,
            migration: true,
        }
    }

    /// `true` when the event actually changes or moves the worker set.
    pub fn is_real_change(&self) -> bool {
        self.migration || self.from_gpus != self.to_gpus
    }
}

/// The checkpoint/restore cost model for elastic scaling events.
///
/// # Example
///
/// ```
/// use elasticflow_perfmodel::{DnnModel, OverheadModel, ScalingEvent};
///
/// let model = OverheadModel::paper_calibrated();
/// let pause = model.pause_seconds(
///     &DnnModel::Bert.profile(),
///     ScalingEvent::scale(1, 8),
/// );
/// assert!(pause > 0.0 && pause < 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Checkpoint write bandwidth, bytes/s.
    pub checkpoint_bw: f64,
    /// Checkpoint read (restore) bandwidth, bytes/s.
    pub restore_bw: f64,
    /// Fixed cost per event (scheduler round-trips, process control).
    pub base_seconds: f64,
    /// Cost of (re)initializing the communication group, per worker.
    pub per_worker_setup_seconds: f64,
}

impl OverheadModel {
    /// The calibration used for all experiments: pauses of roughly 3–20 s
    /// per event depending on model size, matching the magnitudes in the
    /// paper's Fig. 12(b).
    pub fn paper_calibrated() -> Self {
        OverheadModel {
            checkpoint_bw: 0.8e9,
            restore_bw: 1.0e9,
            base_seconds: 1.5,
            per_worker_setup_seconds: 0.4,
        }
    }

    /// A zero-cost model (useful to isolate algorithmic effects in tests
    /// and ablations).
    pub fn free() -> Self {
        OverheadModel {
            checkpoint_bw: f64::INFINITY,
            restore_bw: f64::INFINITY,
            base_seconds: 0.0,
            per_worker_setup_seconds: 0.0,
        }
    }

    /// The pause a job suffers for one scaling/migration event.
    ///
    /// Events that change nothing cost nothing. Suspend-only events pay the
    /// checkpoint but not the restore; resume-only events the reverse.
    pub fn pause_seconds(&self, profile: &ModelProfile, event: ScalingEvent) -> f64 {
        if !event.is_real_change() {
            return 0.0;
        }
        let bytes = profile.checkpoint_bytes();
        let mut pause = self.base_seconds;
        if event.from_gpus > 0 {
            pause += bytes / self.checkpoint_bw;
        }
        if event.to_gpus > 0 {
            pause += bytes / self.restore_bw;
            pause += self.per_worker_setup_seconds * (event.to_gpus as f64).log2().max(1.0);
        }
        pause
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DnnModel;

    #[test]
    fn noop_event_is_free() {
        let m = OverheadModel::paper_calibrated();
        let p = DnnModel::ResNet50.profile();
        assert_eq!(m.pause_seconds(&p, ScalingEvent::scale(4, 4)), 0.0);
    }

    #[test]
    fn migration_costs_like_scaling() {
        // Paper Fig 12(b): the five cases (1->8, 2->8, 4->8, 8->4, migrate 8)
        // have similar overheads because checkpoint/restore dominates.
        let m = OverheadModel::paper_calibrated();
        let p = DnnModel::Bert.profile();
        let cases = [
            ScalingEvent::scale(1, 8),
            ScalingEvent::scale(2, 8),
            ScalingEvent::scale(4, 8),
            ScalingEvent::scale(8, 4),
            ScalingEvent::migrate(8),
        ];
        let pauses: Vec<f64> = cases.iter().map(|&e| m.pause_seconds(&p, e)).collect();
        let min = pauses.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = pauses.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 2.0, "cases too dissimilar: {pauses:?}");
    }

    #[test]
    fn bigger_models_pause_longer() {
        let m = OverheadModel::paper_calibrated();
        let small = m.pause_seconds(&DnnModel::InceptionV3.profile(), ScalingEvent::scale(2, 4));
        let big = m.pause_seconds(&DnnModel::Vgg16.profile(), ScalingEvent::scale(2, 4));
        assert!(big > small);
    }

    #[test]
    fn suspend_skips_restore_cost() {
        let m = OverheadModel::paper_calibrated();
        let p = DnnModel::Gpt2.profile();
        let suspend = m.pause_seconds(&p, ScalingEvent::scale(4, 0));
        let full = m.pause_seconds(&p, ScalingEvent::scale(4, 8));
        assert!(suspend < full);
    }

    #[test]
    fn free_model_is_zero() {
        let m = OverheadModel::free();
        let p = DnnModel::Vgg16.profile();
        assert_eq!(m.pause_seconds(&p, ScalingEvent::scale(1, 8)), 0.0);
    }

    #[test]
    fn pauses_are_marginal_relative_to_scheduling_interval() {
        // Paper: average scheduling interval ~23 min; pauses must be small
        // in comparison.
        let m = OverheadModel::paper_calibrated();
        for model in DnnModel::ALL {
            let pause = m.pause_seconds(&model.profile(), ScalingEvent::scale(1, 8));
            assert!(pause < 23.0 * 60.0 * 0.1, "{model}: {pause}");
        }
    }
}
