//! Scaling curves: throughput as a function of the number of workers.

use elasticflow_cluster::PlacementShape;
use serde::{Deserialize, Serialize};

use crate::{iteration_time, DnnModel, Interconnect};

/// One point of a scaling curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Number of workers (a power of two).
    pub gpus: u32,
    /// Training throughput in iterations per second.
    pub iters_per_sec: f64,
}

/// A job's throughput over the power-of-two GPU ladder, under the best
/// (buddy-consolidated) placement for each count.
///
/// This is the object ElasticFlow's admission control and resource
/// allocation consume: the paper's `T_i(x)` (§4.1), restricted to powers of
/// two by the buddy-allocation placement rule (§4.3).
///
/// # Example
///
/// ```
/// use elasticflow_perfmodel::{DnnModel, Interconnect, ScalingCurve};
///
/// let curve = ScalingCurve::build(DnnModel::Vgg16, 256, &Interconnect::paper_testbed());
/// assert!(curve.is_concave());
/// // Speedup at 8 GPUs is positive but below linear.
/// let s = curve.speedup(8).unwrap();
/// assert!(s > 1.0 && s < 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingCurve {
    model: DnnModel,
    global_batch: u32,
    gpus_per_server: u32,
    points: Vec<CurvePoint>,
}

impl ScalingCurve {
    /// Default cap on the worker ladder.
    pub const DEFAULT_MAX_WORKERS: u32 = 128;

    /// Builds the curve for `model` at `global_batch`, probing powers of two
    /// up to [`ScalingCurve::DEFAULT_MAX_WORKERS`].
    ///
    /// # Panics
    ///
    /// Panics if `global_batch` is zero.
    pub fn build(model: DnnModel, global_batch: u32, net: &Interconnect) -> Self {
        Self::build_with_max(model, global_batch, net, Self::DEFAULT_MAX_WORKERS)
    }

    /// Builds the curve probing powers of two up to `max_workers` (clamped
    /// to the global batch size so every worker gets at least one sample).
    ///
    /// # Panics
    ///
    /// Panics if `global_batch` or `max_workers` is zero.
    pub fn build_with_max(
        model: DnnModel,
        global_batch: u32,
        net: &Interconnect,
        max_workers: u32,
    ) -> Self {
        assert!(global_batch > 0, "global batch must be positive");
        assert!(max_workers > 0, "max workers must be positive");
        let profile = model.profile();
        let cap = max_workers.min(global_batch);
        let mut points = Vec::new();
        let mut w = 1u32;
        while w <= cap {
            let shape = PlacementShape::consolidated(w, net.gpus_per_server());
            let t = iteration_time(&profile, global_batch, shape, net).total;
            points.push(CurvePoint {
                gpus: w,
                iters_per_sec: 1.0 / t,
            });
            w *= 2;
        }
        ScalingCurve {
            model,
            global_batch,
            gpus_per_server: net.gpus_per_server(),
            points,
        }
    }

    /// Constructs a curve directly from measured points (for tests and for
    /// replaying the paper's worked examples).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, the GPU counts are not strictly
    /// increasing powers of two starting at 1, or any throughput is not
    /// positive and finite.
    pub fn from_points(model: DnnModel, global_batch: u32, points: Vec<CurvePoint>) -> Self {
        assert!(!points.is_empty(), "a curve needs at least one point");
        let mut expect = 1u32;
        for p in &points {
            assert_eq!(
                p.gpus, expect,
                "curve points must be the dense power-of-two ladder"
            );
            assert!(
                p.iters_per_sec.is_finite() && p.iters_per_sec > 0.0,
                "throughput must be positive and finite"
            );
            expect *= 2;
        }
        ScalingCurve {
            model,
            global_batch,
            gpus_per_server: 8,
            points,
        }
    }

    /// The model this curve describes.
    pub fn model(&self) -> DnnModel {
        self.model
    }

    /// The global batch size this curve was built for.
    pub fn global_batch(&self) -> u32 {
        self.global_batch
    }

    /// The curve points, ascending by GPU count.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Largest worker count in the curve's domain.
    pub fn max_gpus(&self) -> u32 {
        self.points.last().expect("nonempty").gpus
    }

    /// Throughput in iterations/second with `gpus` workers, or `None` if
    /// `gpus` is not a power of two within the domain. `gpus == 0` yields
    /// zero throughput.
    pub fn iters_per_sec(&self, gpus: u32) -> Option<f64> {
        if gpus == 0 {
            return Some(0.0);
        }
        if !gpus.is_power_of_two() || gpus > self.max_gpus() {
            return None;
        }
        let idx = gpus.trailing_zeros() as usize;
        Some(self.points[idx].iters_per_sec)
    }

    /// Throughput in samples/second with `gpus` workers.
    pub fn samples_per_sec(&self, gpus: u32) -> Option<f64> {
        self.iters_per_sec(gpus)
            .map(|t| t * self.global_batch as f64)
    }

    /// Speedup over a single GPU.
    pub fn speedup(&self, gpus: u32) -> Option<f64> {
        let base = self.points[0].iters_per_sec;
        self.iters_per_sec(gpus).map(|t| t / base)
    }

    /// Per-GPU efficiency: speedup divided by the worker count.
    pub fn efficiency(&self, gpus: u32) -> Option<f64> {
        if gpus == 0 {
            return None;
        }
        self.speedup(gpus).map(|s| s / gpus as f64)
    }

    /// The *knee*: the worker count with the highest throughput. Adding
    /// GPUs beyond the knee makes the job slower (paper constraint (7)).
    pub fn knee(&self) -> u32 {
        self.points
            .iter()
            .max_by(|a, b| {
                a.iters_per_sec
                    .partial_cmp(&b.iters_per_sec)
                    .expect("finite throughputs")
            })
            .expect("nonempty")
            .gpus
    }

    /// Clamps a desired worker count to the largest *useful* count: a
    /// power of two not exceeding the knee (nor the domain).
    pub fn clamp_useful(&self, gpus: u32) -> u32 {
        if gpus == 0 {
            return 0;
        }
        let knee = self.knee();
        let mut w = 1u32;
        let target = gpus.min(knee);
        while w * 2 <= target {
            w *= 2;
        }
        w
    }

    /// The power-of-two ladder of the curve's domain.
    pub fn ladder(&self) -> impl Iterator<Item = u32> + '_ {
        self.points.iter().map(|p| p.gpus)
    }

    /// `true` when marginal throughput gains per added GPU are
    /// non-increasing along the ladder *up to the knee* — the concavity
    /// property ElasticFlow's optimality proofs rely on (§4.1). Points past
    /// the knee are excluded: constraint (7) forbids allocations that slow a
    /// job down, so the algorithms never operate there.
    pub fn is_concave(&self) -> bool {
        let knee = self.knee();
        let mut last_gain_per_gpu = f64::INFINITY;
        for pair in self.points.windows(2) {
            if pair[1].gpus > knee {
                break;
            }
            let added = (pair[1].gpus - pair[0].gpus) as f64;
            let gain = (pair[1].iters_per_sec - pair[0].iters_per_sec) / added;
            if gain > last_gain_per_gpu + 1e-12 {
                return false;
            }
            last_gain_per_gpu = gain;
        }
        true
    }

    /// GPU time (GPU x seconds) to run `iterations` iterations with `gpus`
    /// workers — the paper's "resource usage" (§4.1).
    pub fn gpu_time(&self, gpus: u32, iterations: f64) -> Option<f64> {
        let t = self.iters_per_sec(gpus)?;
        if t <= 0.0 {
            return None;
        }
        Some(gpus as f64 * iterations / t)
    }

    /// Builds a [`CurveMemo`] snapshot of this curve's ladder lookups.
    pub fn memo(&self) -> CurveMemo {
        let mut memo = CurveMemo::default();
        memo.rebuild(self);
        memo
    }
}

/// Precomputed ladder lookups for one [`ScalingCurve`].
///
/// [`ScalingCurve::knee`] scans every point and [`ScalingCurve::clamp_useful`]
/// calls it again, so the progressive-filling inner loop paid an O(ladder)
/// scan per slot. A memo runs those scans once per fill and serves O(1)
/// lookups afterwards. Every value is copied bit-for-bit from the curve —
/// a memoized lookup returns the *identical* `f64` the direct call would,
/// which is what keeps the golden-replay digests unchanged.
///
/// The buffers are reusable: [`rebuild`](CurveMemo::rebuild) clears and
/// refills them in place so a scratch-held memo allocates only on the first
/// fill (or when a later curve has a longer ladder).
#[derive(Debug, Clone, Default)]
pub struct CurveMemo {
    knee: u32,
    max_gpus: u32,
    /// `rate[i]` = throughput at `2^i` workers.
    rate: Vec<f64>,
    /// `peak_rate[i]` = max of `rate[0..=i]` — an upper bound on the
    /// throughput reachable with any allocation of at most `2^i` workers,
    /// even for measured curves that dip before the knee.
    peak_rate: Vec<f64>,
    /// `true` when the throughput is nondecreasing along the power-of-two
    /// ladder over every allocation [`clamp_useful`](CurveMemo::clamp_useful)
    /// can grant (the analytic curves always are; a measured curve that
    /// dips before the knee is not).
    ladder_monotone: bool,
}

impl CurveMemo {
    /// Clears and refills the memo from `curve`, reusing the buffers.
    pub fn rebuild(&mut self, curve: &ScalingCurve) {
        self.knee = curve.knee();
        self.max_gpus = curve.max_gpus();
        self.rate.clear();
        self.peak_rate.clear();
        let mut peak = 0.0f64;
        for p in curve.points() {
            self.rate.push(p.iters_per_sec);
            peak = peak.max(p.iters_per_sec);
            self.peak_rate.push(peak);
        }
        // Monotonicity matters only across grantable sizes: every grant is
        // a power of two at most the largest one not exceeding the knee.
        let cap = self.clamp_useful(u32::MAX);
        let grantable = if cap == 0 {
            0
        } else {
            (cap.trailing_zeros() as usize + 1).min(self.rate.len())
        };
        self.ladder_monotone = self.rate.first().is_none_or(|r| *r >= 0.0)
            && self.rate[..grantable].windows(2).all(|p| p[0] <= p[1]);
    }

    /// The memoized [`ScalingCurve::knee`].
    pub fn knee(&self) -> u32 {
        self.knee
    }

    /// Largest worker count in the curve's domain.
    pub fn max_gpus(&self) -> u32 {
        self.max_gpus
    }

    /// `ScalingCurve::iters_per_sec(gpus).unwrap_or(0.0)` — zero workers
    /// and out-of-domain counts both yield zero throughput, exactly as the
    /// planning call sites treat them.
    pub fn iters_per_sec(&self, gpus: u32) -> f64 {
        if gpus == 0 || !gpus.is_power_of_two() || gpus > self.max_gpus {
            return 0.0;
        }
        self.rate[gpus.trailing_zeros() as usize]
    }

    /// The memoized [`ScalingCurve::clamp_useful`]: largest power of two
    /// not exceeding `min(gpus, knee)`.
    pub fn clamp_useful(&self, gpus: u32) -> u32 {
        if gpus == 0 {
            return 0;
        }
        let target = gpus.min(self.knee);
        let mut w = 1u32;
        while w * 2 <= target {
            w *= 2;
        }
        w
    }

    /// `true` when throughput never decreases as grantable power-of-two
    /// allocations grow (up to the knee clamp). Planners use this as the
    /// soundness gate for ladder-start shortcuts: under a pointwise-fuller
    /// ledger, grants only shrink, so a monotone curve guarantees per-slot
    /// progress only shrinks — a target that fails on the emptier ledger
    /// still fails on the fuller one.
    pub fn ladder_monotone(&self) -> bool {
        self.ladder_monotone
    }

    /// The highest throughput reachable with at most `cap` workers, where
    /// `cap` is a power of two inside the domain. Returns 0.0 for a zero
    /// or out-of-domain cap (callers then skip any pruning based on it).
    pub fn peak_rate_at_or_below(&self, cap: u32) -> f64 {
        if cap == 0 || !cap.is_power_of_two() || cap > self.max_gpus {
            return 0.0;
        }
        self.peak_rate[cap.trailing_zeros() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Interconnect {
        Interconnect::paper_testbed()
    }

    #[test]
    fn all_table1_curves_are_concave() {
        for (model, batches) in crate::PAPER_TABLE1 {
            for &b in batches {
                let curve = ScalingCurve::build(model, b, &net());
                assert!(curve.is_concave(), "{model} gbs={b} not concave");
            }
        }
    }

    #[test]
    fn throughput_monotone_up_to_knee() {
        for (model, batches) in crate::PAPER_TABLE1 {
            for &b in batches {
                let curve = ScalingCurve::build(model, b, &net());
                let knee = curve.knee();
                let mut last = 0.0;
                for g in curve.ladder() {
                    if g > knee {
                        break;
                    }
                    let t = curve.iters_per_sec(g).unwrap();
                    assert!(t >= last, "{model} gbs={b} dips before knee");
                    last = t;
                }
            }
        }
    }

    #[test]
    fn knee_is_within_a_server_for_table1_batches() {
        // With Table-1 global batches (<= 256), the calibrated placement
        // penalty makes cross-server scaling unprofitable — the same effect
        // that gives the paper its 2.17x placement gap.
        for (model, batches) in crate::PAPER_TABLE1 {
            for &b in batches {
                let curve = ScalingCurve::build(model, b, &net());
                assert!(curve.knee() <= 16, "{model} gbs={b} knee {}", curve.knee());
            }
        }
    }

    #[test]
    fn resource_usage_grows_with_gpus() {
        // Concave scaling => GPU time for a fixed amount of work is
        // minimized at 1 GPU (paper §4.1).
        let curve = ScalingCurve::build(DnnModel::ResNet50, 256, &net());
        let base = curve.gpu_time(1, 1000.0).unwrap();
        for g in curve.ladder().skip(1) {
            let usage = curve.gpu_time(g, 1000.0).unwrap();
            assert!(
                usage >= base,
                "gpu_time({g}) = {usage} below single-GPU usage {base}"
            );
        }
    }

    #[test]
    fn lookup_rules() {
        let curve = ScalingCurve::build(DnnModel::Bert, 128, &net());
        assert_eq!(curve.iters_per_sec(0), Some(0.0));
        assert!(curve.iters_per_sec(3).is_none());
        assert!(curve.iters_per_sec(1024).is_none());
        assert!(curve.iters_per_sec(1).is_some());
    }

    #[test]
    fn domain_capped_by_batch() {
        let curve = ScalingCurve::build(DnnModel::DeepSpeech2, 32, &net());
        assert_eq!(curve.max_gpus(), 32);
    }

    #[test]
    fn clamp_useful_respects_knee() {
        let curve = ScalingCurve::build(DnnModel::Vgg16, 256, &net());
        let knee = curve.knee();
        assert_eq!(curve.clamp_useful(1024), knee);
        assert_eq!(curve.clamp_useful(1), 1);
        assert_eq!(curve.clamp_useful(0), 0);
    }

    #[test]
    fn from_points_validates() {
        let pts = vec![
            CurvePoint {
                gpus: 1,
                iters_per_sec: 1.0,
            },
            CurvePoint {
                gpus: 2,
                iters_per_sec: 1.5,
            },
        ];
        let curve = ScalingCurve::from_points(DnnModel::ResNet50, 64, pts);
        assert_eq!(curve.speedup(2), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "dense power-of-two ladder")]
    fn from_points_rejects_gaps() {
        let pts = vec![
            CurvePoint {
                gpus: 1,
                iters_per_sec: 1.0,
            },
            CurvePoint {
                gpus: 4,
                iters_per_sec: 2.0,
            },
        ];
        let _ = ScalingCurve::from_points(DnnModel::ResNet50, 64, pts);
    }

    #[test]
    fn paper_figure4_curve() {
        // The worked example of Fig. 4: throughput 1, 1.5, 2 with 1, 2, 4
        // GPUs. Check the resource-usage arithmetic the paper walks through.
        let pts = vec![
            CurvePoint {
                gpus: 1,
                iters_per_sec: 1.0,
            },
            CurvePoint {
                gpus: 2,
                iters_per_sec: 1.5,
            },
            CurvePoint {
                gpus: 4,
                iters_per_sec: 2.0,
            },
        ];
        let curve = ScalingCurve::from_points(DnnModel::ResNet50, 64, pts);
        assert!((curve.gpu_time(1, 1.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((curve.gpu_time(2, 1.0).unwrap() - 4.0 / 3.0).abs() < 1e-12);
        assert!((curve.gpu_time(4, 1.0).unwrap() - 2.0).abs() < 1e-12);
        assert!(curve.is_concave());
    }

    #[test]
    fn memo_agrees_with_curve_bit_for_bit() {
        for (model, batches) in crate::PAPER_TABLE1 {
            for &b in batches {
                let curve = ScalingCurve::build(model, b, &net());
                let memo = curve.memo();
                assert_eq!(memo.knee(), curve.knee());
                assert_eq!(memo.max_gpus(), curve.max_gpus());
                for g in 0..=(curve.max_gpus() * 2) {
                    assert_eq!(
                        memo.iters_per_sec(g).to_bits(),
                        curve.iters_per_sec(g).unwrap_or(0.0).to_bits(),
                        "{model} gbs={b} gpus={g}"
                    );
                    assert_eq!(memo.clamp_useful(g), curve.clamp_useful(g));
                }
                // The peak-rate prefix really is an upper bound per cap.
                for cap in curve.ladder() {
                    let peak = memo.peak_rate_at_or_below(cap);
                    for g in curve.ladder().filter(|&g| g <= cap) {
                        assert!(curve.iters_per_sec(g).unwrap() <= peak);
                    }
                }
            }
        }
    }

    #[test]
    fn memo_peak_rate_covers_dipping_curves() {
        // A measured curve can dip before recovering; the prefix max must
        // not under-estimate the reachable throughput.
        let pts = vec![
            CurvePoint {
                gpus: 1,
                iters_per_sec: 1.0,
            },
            CurvePoint {
                gpus: 2,
                iters_per_sec: 0.5,
            },
            CurvePoint {
                gpus: 4,
                iters_per_sec: 2.0,
            },
        ];
        let memo = ScalingCurve::from_points(DnnModel::ResNet50, 64, pts).memo();
        assert_eq!(memo.peak_rate_at_or_below(2), 1.0);
        assert_eq!(memo.peak_rate_at_or_below(4), 2.0);
    }

    #[test]
    fn serde_roundtrip() {
        let curve = ScalingCurve::build(DnnModel::Gpt2, 128, &net());
        let json = serde_json::to_string(&curve).unwrap();
        let back: ScalingCurve = serde_json::from_str(&json).unwrap();
        // f64 JSON text is not always bit-exact; the round-trip must be
        // *stable* (identical after one pass) and semantically close.
        let json2 = serde_json::to_string(&back).unwrap();
        assert_eq!(json, json2);
        for (a, b) in curve.points().iter().zip(back.points()) {
            assert!((a.iters_per_sec - b.iters_per_sec).abs() < 1e-9);
        }
    }
}
