//! Per-iteration time model: compute + hierarchical ring all-reduce.

use elasticflow_cluster::PlacementShape;
use serde::{Deserialize, Serialize};

use crate::{Interconnect, ModelProfile};

/// Decomposition of one training iteration's duration.
///
/// `total` is what the scheduler and simulator consume:
/// `compute + (1 - effective_overlap) * (allreduce + latency)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// Forward + backward + optimizer compute time, seconds.
    pub compute: f64,
    /// Un-overlapped all-reduce transfer time, seconds.
    pub exposed_comm: f64,
    /// Synchronization latency, seconds (folded into `exposed_comm`'s
    /// overlap discount as part of the communication phase).
    pub latency: f64,
    /// End-to-end iteration time, seconds.
    pub total: f64,
}

/// Compute time of one iteration with the given *local* batch size.
///
/// Linear in the local batch plus a fixed per-iteration overhead (kernel
/// launches, optimizer step, data loading pipeline bubbles).
pub fn compute_time(profile: &ModelProfile, local_batch: u32) -> f64 {
    profile.fixed_iteration_seconds + local_batch as f64 * profile.per_sample_seconds
}

/// Synchronization (all-reduce) time of one iteration — transfer plus
/// latency, before the overlap discount.
///
/// Models a hierarchical all-reduce: a reduce/broadcast phase among the
/// GPUs of each server at intra-server bandwidth, then a ring all-reduce
/// across servers at network bandwidth. Each ring over `n` members moves
/// `2 (n-1)/n` times the gradient volume.
pub fn sync_time(profile: &ModelProfile, shape: PlacementShape, net: &Interconnect) -> f64 {
    let workers = shape.total_gpus();
    if workers <= 1 {
        return 0.0;
    }
    let bytes = profile.gradient_bytes();
    let per_server = shape.gpus_per_server();
    let servers = shape.servers();
    let mut transfer = 0.0;
    if per_server > 1 {
        let ring = 2.0 * (per_server as f64 - 1.0) / per_server as f64;
        transfer += ring * bytes / net.intra_bw_for(per_server);
    }
    if servers > 1 {
        let ring = 2.0 * (servers as f64 - 1.0) / servers as f64;
        transfer += ring * bytes / net.network_bw();
    }
    transfer + net.sync_latency(workers, servers)
}

/// End-to-end time of one training iteration for `global_batch` samples
/// distributed over the placement `shape`.
///
/// The overlap factor hides part of the communication behind backward
/// compute; crossing servers halves the achievable overlap (inter-node
/// all-reduce phases serialize behind the intra-node reduction).
///
/// # Panics
///
/// Panics if `global_batch` is smaller than the number of workers (a worker
/// would receive an empty batch).
pub fn iteration_time(
    profile: &ModelProfile,
    global_batch: u32,
    shape: PlacementShape,
    net: &Interconnect,
) -> IterationBreakdown {
    let workers = shape.total_gpus();
    assert!(
        global_batch >= workers,
        "global batch {global_batch} smaller than {workers} workers"
    );
    let local_batch = global_batch / workers;
    let compute = compute_time(profile, local_batch);
    let latency = net.sync_latency(workers, shape.servers());
    let transfer = sync_time(profile, shape, net) - latency;
    let overlap = if shape.crosses_servers() {
        profile.overlap * 0.5
    } else {
        profile.overlap
    };
    let exposed_comm = (1.0 - overlap) * (transfer + latency);
    IterationBreakdown {
        compute,
        exposed_comm,
        latency,
        total: compute + exposed_comm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DnnModel;

    fn net() -> Interconnect {
        Interconnect::paper_testbed()
    }

    #[test]
    fn single_gpu_has_no_comm() {
        let p = DnnModel::ResNet50.profile();
        let b = iteration_time(&p, 256, PlacementShape::single_server(1), &net());
        assert_eq!(b.exposed_comm, 0.0);
        assert_eq!(b.latency, 0.0);
        assert!(b.total > 0.25); // 256 samples x 1.1 ms
    }

    #[test]
    fn compute_halves_when_workers_double() {
        let p = DnnModel::Bert.profile();
        let one = iteration_time(&p, 128, PlacementShape::single_server(1), &net());
        let two = iteration_time(&p, 128, PlacementShape::single_server(2), &net());
        let ratio =
            (one.compute - p.fixed_iteration_seconds) / (two.compute - p.fixed_iteration_seconds);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn spread_placements_are_slower() {
        // Paper Fig 2(b): for an 8-worker job, 1x8 > 2x4 > 4x2 > 8x1.
        let p = DnnModel::ResNet50.profile();
        let shapes = [
            PlacementShape::new(1, 8),
            PlacementShape::new(2, 4),
            PlacementShape::new(4, 2),
            PlacementShape::new(8, 1),
        ];
        let times: Vec<f64> = shapes
            .iter()
            .map(|&s| iteration_time(&p, 256, s, &net()).total)
            .collect();
        for w in times.windows(2) {
            assert!(w[0] < w[1], "expected strictly slower spreads: {times:?}");
        }
    }

    #[test]
    fn resnet_placement_ratio_matches_paper() {
        // Paper: same-server throughput is 2.17x the 8-way spread.
        let p = DnnModel::ResNet50.profile();
        let same = iteration_time(&p, 256, PlacementShape::new(1, 8), &net()).total;
        let spread = iteration_time(&p, 256, PlacementShape::new(8, 1), &net()).total;
        let ratio = spread / same;
        assert!(
            (1.9..=2.6).contains(&ratio),
            "placement ratio {ratio:.2} outside the calibrated band"
        );
    }

    #[test]
    fn vgg_scaling_efficiency_matches_paper() {
        // Paper: VGG16, global batch 256, 8 GPUs reaches ~76 % of linear.
        let p = DnnModel::Vgg16.profile();
        let t1 = iteration_time(&p, 256, PlacementShape::single_server(1), &net()).total;
        let t8 = iteration_time(&p, 256, PlacementShape::single_server(8), &net()).total;
        let eff = t1 / (8.0 * t8);
        assert!(
            (0.70..=0.84).contains(&eff),
            "VGG16 8-GPU efficiency {eff:.3} outside the calibrated band"
        );
    }

    #[test]
    fn bigger_models_expose_more_comm() {
        let small = DnnModel::InceptionV3.profile();
        let big = DnnModel::Vgg16.profile();
        let shape = PlacementShape::single_server(8);
        let a = iteration_time(&small, 128, shape, &net());
        let b = iteration_time(&big, 128, shape, &net());
        assert!(b.exposed_comm > a.exposed_comm);
    }

    #[test]
    #[should_panic(expected = "smaller than")]
    fn batch_smaller_than_workers_panics() {
        let p = DnnModel::ResNet50.profile();
        let _ = iteration_time(&p, 4, PlacementShape::single_server(8), &net());
    }
}
