//! The DNN model zoo of the paper's Table 1.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Task category of a training job (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// Computer vision (ImageNet classification).
    Vision,
    /// Natural-language processing.
    Nlp,
    /// Speech recognition.
    Speech,
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Task::Vision => "CV",
            Task::Nlp => "NLP",
            Task::Speech => "Speech Recognition",
        };
        f.write_str(s)
    }
}

/// The six DNN models used in the paper's evaluation (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DnnModel {
    /// ResNet-50 on ImageNet.
    ResNet50,
    /// VGG-16 on ImageNet.
    Vgg16,
    /// Inception-V3 on ImageNet.
    InceptionV3,
    /// BERT (base) on CoLA.
    Bert,
    /// GPT-2 (small) on aclImdb.
    Gpt2,
    /// Deep Speech 2 on LibriSpeech.
    DeepSpeech2,
}

impl DnnModel {
    /// All six models, in Table 1 order.
    pub const ALL: [DnnModel; 6] = [
        DnnModel::ResNet50,
        DnnModel::Vgg16,
        DnnModel::InceptionV3,
        DnnModel::Bert,
        DnnModel::Gpt2,
        DnnModel::DeepSpeech2,
    ];

    /// The static performance/shape profile of this model.
    ///
    /// Parameter counts are the published architecture sizes; per-sample
    /// compute times are calibrated to A100-class single-GPU throughputs;
    /// `overlap` is the fraction of the all-reduce hidden behind backward
    /// computation (low for VGG16 whose gradient bulk materializes at the
    /// very end of the backward pass, higher for conv nets).
    pub fn profile(self) -> ModelProfile {
        match self {
            DnnModel::ResNet50 => ModelProfile {
                model: self,
                params: 25_600_000,
                per_sample_seconds: 1.1e-3,
                fixed_iteration_seconds: 2.0e-3,
                overlap: 0.60,
                task: Task::Vision,
            },
            DnnModel::Vgg16 => ModelProfile {
                model: self,
                params: 138_000_000,
                per_sample_seconds: 2.8e-3,
                fixed_iteration_seconds: 2.0e-3,
                overlap: 0.25,
                task: Task::Vision,
            },
            DnnModel::InceptionV3 => ModelProfile {
                model: self,
                params: 23_900_000,
                per_sample_seconds: 1.6e-3,
                fixed_iteration_seconds: 2.5e-3,
                overlap: 0.60,
                task: Task::Vision,
            },
            DnnModel::Bert => ModelProfile {
                model: self,
                params: 110_000_000,
                per_sample_seconds: 5.2e-3,
                fixed_iteration_seconds: 2.0e-3,
                overlap: 0.50,
                task: Task::Nlp,
            },
            DnnModel::Gpt2 => ModelProfile {
                model: self,
                params: 124_000_000,
                per_sample_seconds: 7.0e-3,
                fixed_iteration_seconds: 2.0e-3,
                overlap: 0.50,
                task: Task::Nlp,
            },
            DnnModel::DeepSpeech2 => ModelProfile {
                model: self,
                params: 87_000_000,
                per_sample_seconds: 9.0e-3,
                fixed_iteration_seconds: 3.0e-3,
                overlap: 0.40,
                task: Task::Speech,
            },
        }
    }

    /// The dataset this model trains on in the paper's Table 1.
    pub fn dataset(self) -> &'static str {
        match self {
            DnnModel::ResNet50 | DnnModel::Vgg16 | DnnModel::InceptionV3 => "ImageNet",
            DnnModel::Bert => "CoLA",
            DnnModel::Gpt2 => "aclImdb V1",
            DnnModel::DeepSpeech2 => "LibriSpeech",
        }
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            DnnModel::ResNet50 => "ResNet50",
            DnnModel::Vgg16 => "VGG16",
            DnnModel::InceptionV3 => "InceptionV3",
            DnnModel::Bert => "BERT",
            DnnModel::Gpt2 => "GPT-2",
            DnnModel::DeepSpeech2 => "DeepSpeech2",
        }
    }
}

impl fmt::Display for DnnModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown model name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError(String);

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown DNN model name: {}", self.0)
    }
}

impl std::error::Error for ParseModelError {}

impl FromStr for DnnModel {
    type Err = ParseModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "resnet50" | "resnet-50" => Ok(DnnModel::ResNet50),
            "vgg16" | "vgg-16" => Ok(DnnModel::Vgg16),
            "inceptionv3" | "inception-v3" => Ok(DnnModel::InceptionV3),
            "bert" => Ok(DnnModel::Bert),
            "gpt2" | "gpt-2" => Ok(DnnModel::Gpt2),
            "deepspeech2" | "deepspeech-2" | "ds2" => Ok(DnnModel::DeepSpeech2),
            other => Err(ParseModelError(other.to_owned())),
        }
    }
}

/// Static shape and cost parameters of one DNN model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Which model this profile describes.
    pub model: DnnModel,
    /// Number of trainable parameters.
    pub params: u64,
    /// Forward+backward compute time per training sample on one GPU.
    pub per_sample_seconds: f64,
    /// Fixed per-iteration overhead (kernel launches, optimizer step).
    pub fixed_iteration_seconds: f64,
    /// Fraction of all-reduce hidden behind backward compute, in `[0, 1)`.
    pub overlap: f64,
    /// Task category from Table 1.
    pub task: Task,
}

impl ModelProfile {
    /// Gradient volume exchanged per iteration, in bytes (fp32 gradients).
    pub fn gradient_bytes(&self) -> f64 {
        self.params as f64 * 4.0
    }

    /// Checkpoint size in bytes (weights + optimizer state, ~3x weights for
    /// Adam-style optimizers).
    pub fn checkpoint_bytes(&self) -> f64 {
        self.params as f64 * 4.0 * 3.0
    }
}

/// Paper Table 1: every (model, global batch size) configuration used in the
/// evaluation workloads.
pub const PAPER_TABLE1: [(DnnModel, &[u32]); 6] = [
    (DnnModel::ResNet50, &[64, 128, 256]),
    (DnnModel::Vgg16, &[64, 128, 256]),
    (DnnModel::InceptionV3, &[64, 128]),
    (DnnModel::Bert, &[64, 128]),
    (DnnModel::Gpt2, &[128, 256]),
    (DnnModel::DeepSpeech2, &[32, 64]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_have_profiles() {
        for model in DnnModel::ALL {
            let p = model.profile();
            assert!(p.params > 1_000_000);
            assert!(p.per_sample_seconds > 0.0);
            assert!((0.0..1.0).contains(&p.overlap));
            assert_eq!(p.model, model);
        }
    }

    #[test]
    fn table1_has_twelve_configs() {
        let total: usize = PAPER_TABLE1.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 14);
        for (model, batches) in PAPER_TABLE1 {
            assert!(!batches.is_empty());
            for &b in batches {
                assert!(b.is_power_of_two(), "{model} batch {b}");
            }
        }
    }

    #[test]
    fn vgg_is_biggest_gradient() {
        let vgg = DnnModel::Vgg16.profile().gradient_bytes();
        for model in DnnModel::ALL {
            assert!(model.profile().gradient_bytes() <= vgg);
        }
    }

    #[test]
    fn parse_roundtrip() {
        for model in DnnModel::ALL {
            let parsed: DnnModel = model.name().parse().unwrap();
            assert_eq!(parsed, model);
        }
        assert!("alexnet".parse::<DnnModel>().is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(DnnModel::ResNet50.to_string(), "ResNet50");
        assert_eq!(Task::Vision.to_string(), "CV");
    }

    #[test]
    fn checkpoint_is_larger_than_gradients() {
        for model in DnnModel::ALL {
            let p = model.profile();
            assert!(p.checkpoint_bytes() > p.gradient_bytes());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let p = DnnModel::Bert.profile();
        let json = serde_json::to_string(&p).unwrap();
        let back: ModelProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
