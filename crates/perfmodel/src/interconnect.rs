//! Effective interconnect bandwidths used by the communication model.

use elasticflow_cluster::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Effective all-reduce bandwidths of a cluster's link hierarchy.
///
/// These are *effective* bandwidths — what an NCCL-style ring all-reduce
/// actually achieves end to end — not peak link speeds, and they are
/// calibrated so the analytic model reproduces the paper's measured shapes
/// (see crate docs).
///
/// # Example
///
/// ```
/// use elasticflow_perfmodel::Interconnect;
///
/// let net = Interconnect::paper_testbed();
/// assert!(net.intra_server_bw() > net.network_bw());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    gpus_per_switch: u32,
    gpus_per_server: u32,
    intra_switch_bw: f64,
    intra_server_bw: f64,
    network_bw: f64,
    /// Per-synchronization latency added per doubling of the worker count.
    intra_latency_per_hop: f64,
    /// Extra latency added per doubling of the *server* count.
    network_latency_per_hop: f64,
}

impl Interconnect {
    /// The calibrated profile of the paper's A100/InfiniBand testbed.
    pub fn paper_testbed() -> Self {
        Interconnect::from_spec(&ClusterSpec::paper_testbed())
    }

    /// Derives the interconnect profile from a [`ClusterSpec`].
    pub fn from_spec(spec: &ClusterSpec) -> Self {
        Interconnect {
            gpus_per_switch: spec.gpus_per_switch,
            gpus_per_server: spec.gpus_per_server,
            intra_switch_bw: spec.intra_switch_bw,
            intra_server_bw: spec.intra_server_bw,
            network_bw: spec.network_bw,
            intra_latency_per_hop: 0.3e-3,
            network_latency_per_hop: 1.0e-3,
        }
    }

    /// GPUs sharing the fastest (switch-level) link.
    pub fn gpus_per_switch(&self) -> u32 {
        self.gpus_per_switch
    }

    /// GPUs per server.
    pub fn gpus_per_server(&self) -> u32 {
        self.gpus_per_server
    }

    /// Effective bandwidth among GPUs on one switch, bytes/s.
    pub fn intra_switch_bw(&self) -> f64 {
        self.intra_switch_bw
    }

    /// Effective bandwidth among GPUs within one server, bytes/s.
    pub fn intra_server_bw(&self) -> f64 {
        self.intra_server_bw
    }

    /// Effective bandwidth across servers, bytes/s.
    pub fn network_bw(&self) -> f64 {
        self.network_bw
    }

    /// Bandwidth of the slowest intra-server link used by `gpus` workers on
    /// one machine.
    pub fn intra_bw_for(&self, gpus: u32) -> f64 {
        if gpus <= self.gpus_per_switch {
            self.intra_switch_bw
        } else {
            self.intra_server_bw
        }
    }

    /// Synchronization latency per iteration for `workers` total workers on
    /// `servers` machines.
    pub fn sync_latency(&self, workers: u32, servers: u32) -> f64 {
        if workers <= 1 {
            return 0.0;
        }
        let worker_hops = (workers as f64).log2();
        let server_hops = if servers > 1 {
            (servers as f64).log2()
        } else {
            0.0
        };
        worker_hops * self.intra_latency_per_hop + server_hops * self.network_latency_per_hop
    }
}

impl Default for Interconnect {
    fn default() -> Self {
        Interconnect::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_values() {
        let net = Interconnect::paper_testbed();
        assert_eq!(net.gpus_per_server(), 8);
        assert_eq!(net.gpus_per_switch(), 4);
        assert!(net.intra_switch_bw() >= net.intra_server_bw());
        assert!(net.intra_server_bw() > net.network_bw());
    }

    #[test]
    fn intra_bw_picks_level() {
        let net = Interconnect::paper_testbed();
        assert_eq!(net.intra_bw_for(2), net.intra_switch_bw());
        assert_eq!(net.intra_bw_for(4), net.intra_switch_bw());
        assert_eq!(net.intra_bw_for(8), net.intra_server_bw());
    }

    #[test]
    fn latency_grows_with_scale() {
        let net = Interconnect::paper_testbed();
        assert_eq!(net.sync_latency(1, 1), 0.0);
        let small = net.sync_latency(8, 1);
        let large = net.sync_latency(64, 8);
        assert!(large > small);
    }

    #[test]
    fn from_spec_respects_custom_bandwidths() {
        let mut spec = ClusterSpec::with_servers(2, 8);
        spec.network_bw = 1.0e9;
        let net = Interconnect::from_spec(&spec);
        assert_eq!(net.network_bw(), 1.0e9);
    }
}
