//! Analytic DNN training performance model for ElasticFlow.
//!
//! The ElasticFlow paper profiles every job's throughput on real A100
//! servers before scheduling it (§5, "Throughput profiling"), then feeds the
//! profiled tables to the scheduler and to a high-fidelity simulator (§6.1).
//! Without GPUs we replace the physical profiling run by an *analytic* model
//! of data-parallel training that reproduces the shapes the paper reports:
//!
//! * **Concave scaling curves** (Fig. 2a): per-iteration time is
//!   `compute(local batch) + (1 - overlap) * allreduce(model bytes, links)`,
//!   so doubling the workers halves compute but grows communication —
//!   diminishing returns, exactly the property ElasticFlow's algorithms
//!   exploit.
//! * **Topology-dependent placement** (Fig. 2b): the all-reduce is
//!   hierarchical — an intra-server phase at NVLink/PCIe speed plus an
//!   inter-server phase at network speed — so consolidated placements beat
//!   spread ones (ResNet50 1x8 vs 8x1 ≈ 2.2x, matching the paper's 2.17x).
//!
//! Calibration targets (checked by tests in the scaling module):
//!
//! | Paper observation | Model output |
//! |---|---|
//! | VGG16, batch 256, 8 GPUs ≈ 76 % of linear | ≈ 77 % |
//! | ResNet50 same-server / 8-way spread ≈ 2.17x | ≈ 2.2x |
//!
//! The crate also models the two system overheads of the paper's Fig. 12:
//! pre-run profiling cost ([`Profiler`]) and scaling/migration pauses
//! ([`OverheadModel`]).
//!
//! # Example
//!
//! ```
//! use elasticflow_perfmodel::{DnnModel, Interconnect, ScalingCurve};
//!
//! let curve = ScalingCurve::build(DnnModel::ResNet50, 256, &Interconnect::paper_testbed());
//! // Throughput grows with workers but sub-linearly.
//! let t1 = curve.iters_per_sec(1).unwrap();
//! let t8 = curve.iters_per_sec(8).unwrap();
//! assert!(t8 > t1 && t8 < 8.0 * t1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comm;
mod interconnect;
mod model;
mod overhead;
mod profiler;
mod scaling;

pub use comm::{compute_time, iteration_time, sync_time, IterationBreakdown};
pub use interconnect::Interconnect;
pub use model::{DnnModel, ModelProfile, Task, PAPER_TABLE1};
pub use overhead::{OverheadModel, ScalingEvent};
pub use profiler::{ProfileReport, Profiler};
pub use scaling::{CurveMemo, CurvePoint, ScalingCurve};
