//! Property-based tests for ElasticFlow's planning algorithms.

use elasticflow_core::{
    mss::minimum_satisfactory_share, progressive_filling, progressive_filling_from,
    theory::brute_force_feasible, AdmissionController, AdmissionOutcome, AllocationProfile,
    FillScratch, PlanningJob, ReservationLedger, ResourceAllocator, SlotGrid,
};
use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};
use elasticflow_trace::JobId;
use proptest::prelude::*;

/// A random concave power-of-two curve up to 4 GPUs.
fn concave_curve() -> impl Strategy<Value = ScalingCurve> {
    (0.5f64..2.0, 0.3f64..0.95, 0.3f64..0.95).prop_map(|(t1, d1, d2)| {
        let g2 = t1 + t1 * d1;
        let g4 = g2 + 2.0 * t1 * d1 * d2;
        ScalingCurve::from_points(
            DnnModel::ResNet50,
            64,
            vec![
                CurvePoint {
                    gpus: 1,
                    iters_per_sec: t1,
                },
                CurvePoint {
                    gpus: 2,
                    iters_per_sec: g2,
                },
                CurvePoint {
                    gpus: 4,
                    iters_per_sec: g4,
                },
            ],
        )
    })
}

fn small_instance() -> impl Strategy<Value = Vec<PlanningJob>> {
    prop::collection::vec((concave_curve(), 0.2f64..4.0, 1usize..4), 1..4).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (curve, work_scale, deadline_slot))| {
                let work = work_scale
                    * curve
                        .iters_per_sec(1)
                        .expect("1 GPU is always on the curve");
                PlanningJob {
                    id: JobId::new(i as u64),
                    curve,
                    remaining_iterations: work,
                    deadline_slot,
                }
            })
            .collect()
    })
}

proptest! {
    /// Algorithm 1 is *sound*: whenever it admits a set, an exhaustive
    /// search confirms a feasible schedule exists.
    #[test]
    fn admission_is_sound(jobs in small_instance()) {
        let grid = SlotGrid::uniform(1.0);
        let total = 4u32;
        if AdmissionController::new(total).check(&jobs, &grid).is_admitted() {
            prop_assert!(
                brute_force_feasible(&jobs, &grid, total),
                "admitted but brute force finds no schedule"
            );
        }
    }

    /// Algorithm 2's output is always executable: per-slot capacity is
    /// respected and every non-lapsed job finishes by its deadline.
    #[test]
    fn allocation_is_executable(jobs in small_instance()) {
        let grid = SlotGrid::uniform(1.0);
        let total = 4u32;
        let result = ResourceAllocator::new(total).allocate(&jobs, &grid);
        let horizon = jobs.iter().map(|j| j.deadline_slot).max().unwrap_or(0);
        for t in 0..horizon {
            let used: u32 = result.profiles.values().map(|p| p.gpus(t)).sum();
            prop_assert!(used <= total, "slot {t} over capacity: {used}");
        }
        for job in &jobs {
            if result.infeasible.contains(&job.id) {
                continue;
            }
            let p = &result.profiles[&job.id];
            let done: f64 = p
                .as_slice()
                .iter()
                .enumerate()
                .map(|(t, &g)| job.iters_in_slot(g, &grid, t))
                .sum();
            prop_assert!(done + 1e-6 >= job.remaining_iterations);
            prop_assert!(p.last_active_slot().unwrap() < job.deadline_slot);
        }
    }

    /// Progressive filling returns minimal constant targets: the profile
    /// it finds never exceeds the knee and meets the work requirement
    /// exactly when it claims to.
    #[test]
    fn progressive_filling_profiles_are_valid(
        curve in concave_curve(),
        work_scale in 0.1f64..6.0,
        deadline_slot in 1usize..6,
        committed in prop::collection::vec(0u32..4, 0..6),
    ) {
        let grid = SlotGrid::uniform(1.0);
        let job = PlanningJob {
            id: JobId::new(0),
            curve: curve.clone(),
            remaining_iterations: work_scale * curve.iters_per_sec(1).expect("1 GPU is always on the curve"),
            deadline_slot,
        };
        let mut ledger = ReservationLedger::new();
        ledger.commit(&elasticflow_core::AllocationProfile::new(committed));
        if let Some(p) = progressive_filling(&job, &ledger, &grid, 4, None) {
            let done: f64 = p
                .as_slice()
                .iter()
                .enumerate()
                .map(|(t, &g)| job.iters_in_slot(g, &grid, t))
                .sum();
            prop_assert!(done + 1e-9 >= job.remaining_iterations);
            for (t, &g) in p.as_slice().iter().enumerate() {
                prop_assert!(g == 0 || g.is_power_of_two());
                prop_assert!(g <= curve.knee());
                prop_assert!(g + ledger.committed(t) <= 4 || g == 0);
            }
            prop_assert!(p.len() <= deadline_slot);
        }
    }

    /// The minimum satisfactory share is monotone: looser deadlines never
    /// require more GPUs, and the returned share always meets the window.
    #[test]
    fn mss_is_monotone_and_sufficient(
        curve in concave_curve(),
        work in 0.1f64..8.0,
        window_a in 0.1f64..10.0,
        delta in 0.0f64..10.0,
    ) {
        let window_b = window_a + delta;
        let a = minimum_satisfactory_share(&curve, work, window_a);
        let b = minimum_satisfactory_share(&curve, work, window_b);
        match (a, b) {
            (Some(sa), Some(sb)) => {
                prop_assert!(sb <= sa, "looser window needs more GPUs");
                prop_assert!(curve.iters_per_sec(sa).unwrap() * window_a + 1e-9 >= work);
            }
            (Some(_), None) => prop_assert!(false, "looser window became infeasible"),
            _ => {}
        }
    }

    /// The incremental admission entry point agrees *exactly* with a
    /// from-scratch Algorithm 1 run over the union: same witness plan
    /// (bit-identical profiles) when admitted, same blocking job when
    /// rejected.
    #[test]
    fn incremental_admission_matches_from_scratch_check(jobs in small_instance()) {
        let grid = SlotGrid::uniform(1.0);
        let ac = AdmissionController::new(4);
        let (candidate, existing) = jobs.split_last().expect("instances are non-empty");
        let (set, _lapsed) = ac.fill(existing, &grid);
        let mut union: Vec<PlanningJob> = set.jobs().to_vec();
        union.push(candidate.clone());
        let incremental = set.admission_outcome(candidate, &grid);
        let from_scratch = ac.check(&union, &grid);
        prop_assert_eq!(incremental, from_scratch);
    }

    /// An [`elasticflow_core::AdmissionSet`] mutated through admit /
    /// withdraw sequences is indistinguishable from a set filled from
    /// scratch over the same resident jobs: identical plans and identical
    /// reservation ledgers.
    #[test]
    fn admit_withdraw_sequences_match_from_scratch_fill(jobs in small_instance()) {
        let grid = SlotGrid::uniform(1.0);
        let ac = AdmissionController::new(4);
        let (mut set, _) = ac.fill(&[], &grid);
        let mut resident: Vec<PlanningJob> = Vec::new();
        for job in &jobs {
            if set.admit(job.clone(), &grid).is_ok() {
                resident.push(job.clone());
            }
        }
        // Mid-sequence checkpoint: the mutated set matches a fresh fill.
        let (fresh, lapsed) = ac.fill(&resident, &grid);
        prop_assert!(lapsed.is_empty(), "admitted jobs cannot lapse on refill");
        prop_assert_eq!(set.plan(), fresh.plan());
        prop_assert_eq!(set.ledger(), fresh.ledger());
        // Withdrawing only frees capacity, so nobody lapses and the
        // survivors match a from-scratch fill again.
        let withdrawn: Vec<JobId> = resident.iter().step_by(2).map(|j| j.id).collect();
        for id in &withdrawn {
            let lapsed = set.withdraw(*id, &grid);
            prop_assert!(lapsed.is_empty(), "withdrawal freed capacity but lapsed {lapsed:?}");
            resident.retain(|j| j.id != *id);
        }
        let (fresh, lapsed) = ac.fill(&resident, &grid);
        prop_assert!(lapsed.is_empty());
        prop_assert_eq!(set.plan(), fresh.plan());
        prop_assert_eq!(set.ledger(), fresh.ledger());
    }

    /// Admission is monotone in workload: removing a job from an admitted
    /// set keeps it admitted.
    #[test]
    fn admission_is_downward_closed(jobs in small_instance()) {
        let grid = SlotGrid::uniform(1.0);
        let ac = AdmissionController::new(4);
        if ac.check(&jobs, &grid).is_admitted() && jobs.len() > 1 {
            for skip in 0..jobs.len() {
                let subset: Vec<PlanningJob> = jobs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, j)| j.clone())
                    .collect();
                prop_assert!(
                    ac.check(&subset, &grid).is_admitted(),
                    "removing a job broke admission"
                );
            }
        }
    }
}

/// A random curve over the 1..=8 power-of-two ladder. Rates are drawn
/// independently, so a sample may be monotone (ladder-start hints engage)
/// or dip (the monotonicity gate must force the full ladder) — both paths
/// of the hinted fill get exercised.
fn ladder_curve() -> impl Strategy<Value = ScalingCurve> {
    prop::collection::vec(0.1f64..4.0, 4..5).prop_map(|rates| {
        ScalingCurve::from_points(
            DnnModel::ResNet50,
            64,
            rates
                .into_iter()
                .enumerate()
                .map(|(i, iters_per_sec)| CurvePoint {
                    gpus: 1 << i,
                    iters_per_sec,
                })
                .collect(),
        )
    })
}

/// A ledger built from a few random committed profiles.
fn random_ledger(total: u32) -> impl Strategy<Value = ReservationLedger> {
    prop::collection::vec(prop::collection::vec(0u32..total + 1, 0..6), 0..4).prop_map(|profiles| {
        let mut ledger = ReservationLedger::new();
        for gpus in profiles {
            ledger.commit(&AllocationProfile::new(gpus));
        }
        ledger
    })
}

proptest! {
    /// The ladder-start shortcut is exact: a job's full-ladder target
    /// under some ledger is a sound starting rung under *any* ledger that
    /// dominates it (pointwise at least as full) — the hinted fill must
    /// return the same profile and the same target as the full ladder,
    /// for monotone and non-monotone curves alike.
    #[test]
    fn ladder_start_matches_full_ladder_under_dominating_ledgers(
        curve in ladder_curve(),
        base in random_ledger(8),
        extra in prop::collection::vec(0u32..9, 0..8),
        work_scale in 0.2f64..6.0,
        deadline_slot in 1usize..10,
    ) {
        let grid = SlotGrid::uniform(1.0);
        let total = 8u32;
        let work = work_scale * curve.iters_per_sec(1).expect("rate at 1 GPU");
        let job = PlanningJob {
            id: JobId::new(1),
            curve,
            remaining_iterations: work,
            deadline_slot,
        };
        let mut scratch = FillScratch::new();
        if let Some((_, stored_target)) =
            progressive_filling_from(&job, &base, &grid, total, 1, &mut scratch)
        {
            let mut fuller = base.clone();
            fuller.commit(&AllocationProfile::new(extra));
            let full = progressive_filling_from(&job, &fuller, &grid, total, 1, &mut scratch);
            let hinted =
                progressive_filling_from(&job, &fuller, &grid, total, stored_target, &mut scratch);
            prop_assert_eq!(hinted, full);
        }
    }

    /// The ledger's in-place cache rebuild serves exactly the views a
    /// cold ledger (same committed profiles, fresh cache) computes, at
    /// every point of an interleaved commit/uncommit/read sequence.
    #[test]
    fn ledger_cached_views_match_a_cold_rebuild(
        ops in prop::collection::vec(
            (any::<bool>(), prop::collection::vec(0u32..5, 0..6), 0usize..8),
            1..24,
        )
    ) {
        let mut live = ReservationLedger::new();
        let mut held: Vec<AllocationProfile> = Vec::new();
        for (is_commit, gpus, pick) in ops {
            if is_commit || held.is_empty() {
                let profile = AllocationProfile::new(gpus);
                live.commit(&profile);
                held.push(profile);
            } else {
                let profile = held.remove(pick % held.len());
                live.uncommit(&profile);
            }
            let mut cold = ReservationLedger::new();
            for profile in &held {
                cold.commit(profile);
            }
            prop_assert_eq!(live.peak(), cold.peak());
            prop_assert_eq!(live.horizon(), cold.horizon());
            for t in 0..12 {
                prop_assert_eq!(live.committed(t), cold.committed(t));
                prop_assert_eq!(live.committed_before(t), cold.committed_before(t));
                // Inside the horizon run boundaries are representation-
                // independent; past it the two ledgers may disagree on
                // where the all-zero tail "ends" (trailing zero slots are
                // trimmed by uncommit but not by commit), and walkers only
                // need the run to make progress there.
                if t < live.horizon() {
                    prop_assert_eq!(live.run_end(t), cold.run_end(t));
                }
                prop_assert!(live.run_end(t) > t);
                prop_assert!(cold.run_end(t) > t);
            }
        }
    }

    /// A stream of incremental admissions (shared scratch, so ladder
    /// hints and recycled profile buffers accumulate) answers every
    /// question — witness plan, blocking job, shortfall — exactly as a
    /// from-scratch Algorithm 1 over the union would.
    #[test]
    fn incremental_stream_matches_from_scratch_check(
        specs in prop::collection::vec((ladder_curve(), 0.2f64..5.0, 1usize..8), 1..12)
    ) {
        let grid = SlotGrid::uniform(1.0);
        let controller = AdmissionController::new(8);
        let (mut set, _) = controller.fill(&[], &grid);
        let mut accepted: Vec<PlanningJob> = Vec::new();
        let mut scratch = FillScratch::new();
        for (i, (curve, work_scale, deadline_slot)) in specs.into_iter().enumerate() {
            let work = work_scale * curve.iters_per_sec(1).expect("rate at 1 GPU");
            let job = PlanningJob {
                id: JobId::new(i as u64),
                curve,
                remaining_iterations: work,
                deadline_slot,
            };
            let mut union = accepted.clone();
            union.push(job.clone());
            let offline = controller.check(&union, &grid);
            match (set.admit_with(job.clone(), &grid, &mut scratch), offline) {
                (Ok(()), AdmissionOutcome::Admitted { plan }) => {
                    accepted.push(job);
                    prop_assert_eq!(set.plan(), plan);
                }
                (Err(denial), AdmissionOutcome::Rejected { blocking_job, shortfall }) => {
                    prop_assert_eq!(denial.blocking_job, blocking_job);
                    prop_assert_eq!(denial.shortfall, shortfall);
                }
                (incremental, offline) => prop_assert!(
                    false,
                    "incremental {incremental:?} disagrees with offline {offline:?}"
                ),
            }
        }
    }
}
