//! Scenario tests for the end-to-end ElasticFlow scheduler, run through
//! the simulator.

use elasticflow_cluster::ClusterSpec;
use elasticflow_core::ElasticFlowScheduler;
use elasticflow_perfmodel::Interconnect;
use elasticflow_sim::{SimConfig, Simulation};
use elasticflow_trace::{JobKind, TraceConfig};

fn run(servers: u32, seed: u64) -> elasticflow_sim::SimReport {
    let spec = ClusterSpec::with_servers(servers, 8);
    let trace = TraceConfig::testbed_small(seed).generate(&Interconnect::from_spec(&spec));
    Simulation::new(spec, SimConfig::default()).run(&trace, &mut ElasticFlowScheduler::new())
}

#[test]
fn guarantee_holds_across_seeds() {
    // Admitted jobs meet their deadlines across many workloads, modulo a
    // small slack for scaling pauses on the last scheduling interval.
    let mut admitted_total = 0usize;
    let mut missed_total = 0usize;
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 34] {
        let report = run(4, seed);
        for o in report.outcomes() {
            if o.dropped || o.kind != JobKind::Slo {
                continue;
            }
            admitted_total += 1;
            if !o.met_deadline() {
                missed_total += 1;
            }
        }
    }
    assert!(admitted_total > 100, "weak test: {admitted_total} admitted");
    let miss_rate = missed_total as f64 / admitted_total as f64;
    assert!(
        miss_rate < 0.05,
        "guarantee too leaky: {missed_total}/{admitted_total}"
    );
}

#[test]
fn bigger_clusters_admit_weakly_more() {
    for seed in [4u64, 9] {
        let small = run(2, seed);
        let large = run(8, seed);
        let admitted =
            |r: &elasticflow_sim::SimReport| r.outcomes().iter().filter(|o| !o.dropped).count();
        assert!(
            admitted(&large) >= admitted(&small),
            "seed {seed}: {} admitted on 64 GPUs vs {} on 16",
            admitted(&large),
            admitted(&small)
        );
    }
}

#[test]
fn drops_happen_at_submission_not_later() {
    // A dropped job must never have consumed GPU time.
    for seed in [6u64, 7] {
        let report = run(2, seed);
        for o in report.outcomes() {
            if o.dropped {
                assert_eq!(o.gpu_seconds, 0.0, "{} ran before dropping", o.id);
                assert!(o.finish_time.is_none());
            }
        }
    }
}

#[test]
fn dsr_is_monotone_in_deadline_tightness() {
    // Loosening every deadline (same work, same arrivals) can only help.
    let spec = ClusterSpec::small_testbed();
    let net = Interconnect::from_spec(&spec);
    let tight = TraceConfig::testbed_small(15)
        .with_lambda_range(0.5, 0.8)
        .generate(&net);
    let loose = TraceConfig::testbed_small(15)
        .with_lambda_range(2.5, 3.0)
        .generate(&net);
    let sim = Simulation::new(spec, SimConfig::default());
    let tight_dsr = sim
        .run(&tight, &mut ElasticFlowScheduler::new())
        .deadline_satisfactory_ratio();
    let loose_dsr = sim
        .run(&loose, &mut ElasticFlowScheduler::new())
        .deadline_satisfactory_ratio();
    assert!(
        loose_dsr >= tight_dsr,
        "loose {loose_dsr} below tight {tight_dsr}"
    );
    assert!(loose_dsr > 0.9, "loose deadlines should nearly all be met");
}

#[test]
fn empty_trace_is_a_noop() {
    let spec = ClusterSpec::small_testbed();
    let trace = elasticflow_trace::Trace::new("empty", Vec::new());
    let report =
        Simulation::new(spec, SimConfig::default()).run(&trace, &mut ElasticFlowScheduler::new());
    assert!(report.outcomes().is_empty());
    assert_eq!(report.deadline_satisfactory_ratio(), 1.0);
}

#[test]
fn best_effort_only_trace_finishes_everything() {
    let spec = ClusterSpec::small_testbed();
    let trace = TraceConfig::testbed_small(30)
        .with_best_effort_fraction(1.0)
        .generate(&Interconnect::from_spec(&spec));
    let report =
        Simulation::new(spec, SimConfig::default()).run(&trace, &mut ElasticFlowScheduler::new());
    for o in report.outcomes() {
        assert!(!o.dropped);
        assert!(o.finish_time.is_some(), "{} never finished", o.id);
    }
    assert!(report.avg_best_effort_jct().unwrap() > 0.0);
}
