//! Differential property test for the Algorithm 2 boost loop.
//!
//! The heap-driven [`ResourceAllocator::boost`] replaced a linear
//! marginal-return rescan; the old implementation is retained verbatim as
//! [`ResourceAllocator::boost_reference`] precisely so this test can hold
//! the two against each other on random instances. They must agree on
//! *everything* — the GPUs spent, every resulting profile, and the
//! committed ledger — because the replan path's output feeds the golden
//! replay digests, where any divergence is an observable behavior change.

use std::collections::BTreeMap;

use elasticflow_core::{
    progressive_filling, PlanningJob, ReservationLedger, ResourceAllocator, SlotGrid,
};
use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};
use elasticflow_trace::JobId;
use proptest::prelude::*;

/// A random concave power-of-two curve up to 8 GPUs.
fn concave_curve() -> impl Strategy<Value = ScalingCurve> {
    (0.5f64..2.0, 0.3f64..0.95, 0.3f64..0.95, 0.2f64..0.9).prop_map(|(t1, d1, d2, d3)| {
        let g2 = t1 + t1 * d1;
        let g4 = g2 + 2.0 * t1 * d1 * d2;
        let g8 = g4 + 4.0 * t1 * d1 * d2 * d3;
        ScalingCurve::from_points(
            DnnModel::ResNet50,
            64,
            vec![
                CurvePoint {
                    gpus: 1,
                    iters_per_sec: t1,
                },
                CurvePoint {
                    gpus: 2,
                    iters_per_sec: g2,
                },
                CurvePoint {
                    gpus: 4,
                    iters_per_sec: g4,
                },
                CurvePoint {
                    gpus: 8,
                    iters_per_sec: g8,
                },
            ],
        )
    })
}

/// Random jobs plus a per-job incumbent GPU count (0 = no incumbent),
/// the incumbents being what steers the heap's restoring-first ordering.
#[allow(clippy::type_complexity)]
fn instance() -> impl Strategy<Value = Vec<(ScalingCurve, f64, usize, u32)>> {
    prop::collection::vec((concave_curve(), 0.2f64..6.0, 1usize..6, 0u32..5), 1..7)
}

proptest! {
    /// On random job/curve/grid/incumbent/budget sets, the heap-driven
    /// boost and the linear reference walk the same trajectory.
    #[test]
    fn heap_boost_matches_linear_reference(
        specs in instance(),
        budget_pick in 0u32..9,
    ) {
        let grid = SlotGrid::uniform(1.0);
        let total = 8u32;
        let alloc = ResourceAllocator::new(total);

        let mut jobs = Vec::new();
        let mut incumbents = BTreeMap::new();
        for (i, (curve, work_scale, deadline_slot, incumbent)) in specs.into_iter().enumerate() {
            let id = JobId::new(i as u64);
            let work = work_scale
                * curve
                    .iters_per_sec(1)
                    .expect("1 GPU is always on the curve");
            if incumbent > 0 {
                incumbents.insert(id, incumbent);
            }
            jobs.push(PlanningJob {
                id,
                curve,
                remaining_iterations: work,
                deadline_slot,
            });
        }

        // Rebuild Algorithm 2's phase 1 (minimum satisfactory shares) so
        // the boost loops start from a realistic mid-pipeline state.
        let mut profiles = BTreeMap::new();
        let mut ledger = ReservationLedger::new();
        for job in &jobs {
            if let Some(p) = progressive_filling(job, &ledger, &grid, total, None) {
                ledger.commit(&p);
                profiles.insert(job.id, p);
            }
        }
        let used: u32 = profiles.values().map(|p| p.gpus(0)).sum();
        let free0 = total.saturating_sub(used);
        // Budgets from 0 up to the full leftover, including starved ones.
        let budget = if free0 == 0 { 0 } else { budget_pick % (free0 + 1) };

        let mut p_heap = profiles.clone();
        let mut l_heap = ledger.clone();
        let spent_heap = alloc.boost(&jobs, &grid, &mut p_heap, &mut l_heap, budget, &incumbents);

        let mut p_ref = profiles;
        let mut l_ref = ledger;
        let spent_ref =
            alloc.boost_reference(&jobs, &grid, &mut p_ref, &mut l_ref, budget, &incumbents);

        prop_assert_eq!(spent_heap, spent_ref, "GPUs spent diverge");
        prop_assert_eq!(&p_heap, &p_ref, "resulting profiles diverge");
        prop_assert_eq!(&l_heap, &l_ref, "committed ledgers diverge");
        prop_assert!(spent_heap <= budget, "boost overspent its budget");
    }
}
