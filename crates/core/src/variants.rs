//! The ablation variants of the paper's Fig. 9: EDF + Admission Control
//! and EDF + Elastic Scaling.
//!
//! ElasticFlow's improvement decomposes into two mechanisms. These
//! variants graft exactly one of them onto plain EDF so the sources-of-
//! improvement experiment (§6.4) can attribute the gains:
//!
//! * [`EdfWithAdmission`] — ElasticFlow's progressive-filling admission
//!   test, but EDF's give-the-knee-to-the-most-urgent allocation;
//! * [`EdfWithElastic`] — admit everything like EDF, but allocate with
//!   ElasticFlow's MSS + marginal-return machinery (Algorithm 2).

use elasticflow_sched::{
    AdmissionDecision, ClusterView, EdfScheduler, JobRuntime, JobTable, SchedulePlan, Scheduler,
};

use crate::{ElasticFlowScheduler, PlanningJob, SlotGrid, WORK_EPSILON};

/// Planning grid anchored to absolute slot boundaries (see
/// `ElasticFlowScheduler::anchored_grid`).
fn anchored_grid(slot_seconds: f64, now: f64) -> SlotGrid {
    let into_slot = now.rem_euclid(slot_seconds);
    let first = if into_slot < WORK_EPSILON || slot_seconds - into_slot < 1.0 {
        slot_seconds
    } else {
        slot_seconds - into_slot
    };
    SlotGrid::new(first, slot_seconds)
}

/// EDF allocation with ElasticFlow admission control.
///
/// # Example
///
/// ```
/// use elasticflow_core::EdfWithAdmission;
/// use elasticflow_sched::Scheduler;
///
/// assert_eq!(EdfWithAdmission::new().name(), "edf+ac");
/// ```
#[derive(Debug, Clone)]
pub struct EdfWithAdmission {
    planning_slot_seconds: f64,
    edf: EdfScheduler,
}

impl EdfWithAdmission {
    /// Creates the variant with ElasticFlow's default planning slot.
    pub fn new() -> Self {
        EdfWithAdmission {
            planning_slot_seconds: ElasticFlowScheduler::DEFAULT_PLANNING_SLOT,
            edf: EdfScheduler::new(),
        }
    }
}

impl Default for EdfWithAdmission {
    fn default() -> Self {
        EdfWithAdmission::new()
    }
}

impl Scheduler for EdfWithAdmission {
    fn name(&self) -> &str {
        "edf+ac"
    }

    fn on_job_arrival(
        &mut self,
        job: &JobRuntime,
        now: f64,
        view: &ClusterView,
        jobs: &JobTable,
    ) -> AdmissionDecision {
        if !job.is_slo() {
            return AdmissionDecision::Admit;
        }
        let grid = anchored_grid(self.planning_slot_seconds, now);
        let existing: Vec<PlanningJob> = jobs
            .active()
            .filter(|j| j.is_slo())
            .map(|j| ElasticFlowScheduler::planning_job(j, now, &grid))
            .collect();
        crate::scheduler::admission_decision(job, now, view, &existing, &grid)
    }

    fn plan(&mut self, now: f64, view: &ClusterView, jobs: &JobTable) -> SchedulePlan {
        self.edf.plan(now, view, jobs)
    }
}

/// EDF with elastic scaling but **no admission control**: every job is
/// admitted, jobs are served strictly in deadline order, and each receives
/// its minimum satisfactory share (scaled elastically) — but a job whose
/// deadline can no longer be met still holds its place in the EDF order
/// and grabs up to its knee, starving later feasible jobs. This is the
/// failure mode admission control exists to prevent (paper §6.4): at high
/// load EDF+ES wastes GPU-time on hopeless jobs.
///
/// # Example
///
/// ```
/// use elasticflow_core::EdfWithElastic;
/// use elasticflow_sched::Scheduler;
///
/// assert_eq!(EdfWithElastic::new().name(), "edf+es");
/// ```
#[derive(Debug, Clone)]
pub struct EdfWithElastic {
    planning_slot_seconds: f64,
}

impl EdfWithElastic {
    /// Creates the variant.
    pub fn new() -> Self {
        EdfWithElastic {
            planning_slot_seconds: ElasticFlowScheduler::DEFAULT_PLANNING_SLOT,
        }
    }
}

impl Default for EdfWithElastic {
    fn default() -> Self {
        EdfWithElastic::new()
    }
}

impl Scheduler for EdfWithElastic {
    fn name(&self) -> &str {
        "edf+es"
    }

    fn on_job_arrival(
        &mut self,
        _job: &JobRuntime,
        _now: f64,
        _view: &ClusterView,
        _jobs: &JobTable,
    ) -> AdmissionDecision {
        AdmissionDecision::Admit
    }

    fn plan(&mut self, now: f64, view: &ClusterView, jobs: &JobTable) -> SchedulePlan {
        use crate::{progressive_filling, AllocationProfile, ReservationLedger};
        use elasticflow_sched::clamp_pow2;

        let grid = anchored_grid(self.planning_slot_seconds, now);
        let mut actives: Vec<&JobRuntime> = jobs.active().collect();
        actives.sort_by(|a, b| {
            a.spec
                .deadline
                .total_cmp(&b.spec.deadline)
                .then(a.id().cmp(&b.id()))
        });
        let mut ledger = ReservationLedger::new();
        let mut plan = SchedulePlan::new();
        let mut free0 = view.total_gpus;
        for job in &actives {
            let pj = ElasticFlowScheduler::planning_job(job, now, &grid);
            match progressive_filling(&pj, &ledger, &grid, view.total_gpus, None) {
                Some(profile) => {
                    let g = profile.gpus(0);
                    if g > 0 {
                        plan.assign(job.id(), g);
                        free0 -= g;
                    }
                    ledger.commit(&profile);
                }
                None => {
                    // Doomed but most urgent: EDF still runs it at up to
                    // its knee, eating into everyone behind it.
                    let g = clamp_pow2(job.knee(), free0);
                    if g > 0 {
                        plan.assign(job.id(), g);
                        free0 -= g;
                        ledger.commit(&AllocationProfile::new(vec![g]));
                    }
                }
            }
        }
        // Leftover slot-0 GPUs: EDF flavor, upgrade most urgent first.
        for job in &actives {
            if free0 == 0 {
                break;
            }
            let mut cur = plan.gpus(job.id());
            loop {
                let next = if cur == 0 { 1 } else { cur * 2 };
                if next > job.knee() || next - cur > free0 {
                    break;
                }
                free0 -= next - cur;
                cur = next;
            }
            if cur > 0 {
                plan.assign(job.id(), cur);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_perfmodel::{DnnModel, Interconnect, ScalingCurve};
    use elasticflow_trace::{JobId, JobSpec};

    fn runtime(id: u64, deadline: f64, iterations: f64) -> JobRuntime {
        let curve = ScalingCurve::build(DnnModel::ResNet50, 128, &Interconnect::paper_testbed());
        let mut rt = JobRuntime::new(
            JobSpec::builder(JobId::new(id), DnnModel::ResNet50, 128)
                .iterations(iterations)
                .submit_time(0.0)
                .deadline(deadline)
                .trace_shape(4, 3_600.0)
                .build(),
            curve,
        );
        rt.admitted = true;
        rt
    }

    fn work_for(seconds: f64, gpus: u32) -> f64 {
        let curve = ScalingCurve::build(DnnModel::ResNet50, 128, &Interconnect::paper_testbed());
        seconds * curve.iters_per_sec(gpus).unwrap()
    }

    #[test]
    fn edf_ac_drops_like_elasticflow() {
        let mut v = EdfWithAdmission::new();
        let jobs = JobTable::new();
        let hopeless = runtime(1, 1_300.0, work_for(40_000.0, 8));
        assert!(matches!(
            v.on_job_arrival(&hopeless, 0.0, &ClusterView::new(16), &jobs),
            AdmissionDecision::Drop { .. }
        ));
    }

    #[test]
    fn edf_ac_plans_like_edf() {
        let mut v = EdfWithAdmission::new();
        let mut jobs = JobTable::new();
        jobs.insert(runtime(1, 9_000.0, work_for(1_800.0, 1)));
        jobs.insert(runtime(2, 5_000.0, work_for(1_800.0, 1)));
        let ours = v.plan(0.0, &ClusterView::new(16), &jobs);
        let reference = EdfScheduler::new().plan(0.0, &ClusterView::new(16), &jobs);
        assert_eq!(ours, reference);
    }

    #[test]
    fn edf_es_admits_everything() {
        let mut v = EdfWithElastic::new();
        let jobs = JobTable::new();
        let hopeless = runtime(1, 1_300.0, work_for(40_000.0, 8));
        assert_eq!(
            v.on_job_arrival(&hopeless, 0.0, &ClusterView::new(16), &jobs),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn edf_es_shares_like_elasticflow() {
        let mut v = EdfWithElastic::new();
        let mut jobs = JobTable::new();
        jobs.insert(runtime(1, 40_000.0, work_for(9_000.0, 1)));
        jobs.insert(runtime(2, 40_000.0, work_for(9_000.0, 1)));
        let plan = v.plan(0.0, &ClusterView::new(16), &jobs);
        // Elastic allocation runs both concurrently.
        assert!(plan.gpus(JobId::new(1)) > 0);
        assert!(plan.gpus(JobId::new(2)) > 0);
    }
}
