//! Executable checks for the paper's theorems.
//!
//! * **Theorem 1** (linear scaling): deadline-sorted GPU-time prefix sums
//!   decide feasibility exactly — [`theorem1_feasible`].
//! * **Theorem 2** (concave scaling): Algorithm 2's greedy marginal-return
//!   allocation is optimal. We validate both algorithms against the
//!   exhaustive enumerator [`brute_force_feasible`] on small instances in
//!   this module's tests (and in the crate's proptest suite).

use elasticflow_trace::JobId;

use crate::{PlanningJob, SlotGrid, WORK_EPSILON};

/// A job under the *linear-scaling* model of Theorem 1: throughput
/// `k * g` for `g` GPUs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearJob {
    /// Job id (for reporting).
    pub id: JobId,
    /// Iterations to run (the paper's `M_i`).
    pub work: f64,
    /// Per-GPU throughput (the paper's `k_i`), iterations/second/GPU.
    pub per_gpu_throughput: f64,
    /// Deadline, seconds from now (the paper's `D_i`).
    pub deadline: f64,
}

/// Theorem 1: for linear scaling curves, the deadlines of all jobs can be
/// guaranteed iff for every deadline-sorted prefix
/// `sum_j M_j / k_j <= G * D_i`.
///
/// # Example
///
/// ```
/// use elasticflow_core::theory::{theorem1_feasible, LinearJob};
/// use elasticflow_trace::JobId;
///
/// let job = |id, work, deadline| LinearJob {
///     id: JobId::new(id),
///     work,
///     per_gpu_throughput: 1.0,
///     deadline,
/// };
/// // 2 GPUs: 2 units by t=1 and 2 more by t=2 fit exactly…
/// assert!(theorem1_feasible(&[job(0, 2.0, 1.0), job(1, 2.0, 2.0)], 2));
/// // …but any more work does not.
/// assert!(!theorem1_feasible(&[job(0, 2.0, 1.0), job(1, 2.5, 2.0)], 2));
/// ```
pub fn theorem1_feasible(jobs: &[LinearJob], total_gpus: u32) -> bool {
    let mut sorted: Vec<&LinearJob> = jobs.iter().collect();
    sorted.sort_by(|a, b| a.deadline.total_cmp(&b.deadline).then(a.id.cmp(&b.id)));
    let mut gpu_time = 0.0f64;
    for job in sorted {
        assert!(
            job.per_gpu_throughput > 0.0 && job.work >= 0.0,
            "invalid linear job"
        );
        gpu_time += job.work / job.per_gpu_throughput;
        if gpu_time > total_gpus as f64 * job.deadline + WORK_EPSILON {
            return false;
        }
    }
    true
}

/// Exhaustively searches for *any* per-slot allocation (on the power-of-two
/// ladder, capacity-respecting) that finishes every job by its deadline.
/// Exponential — intended for instances of at most ~3 jobs x 4 slots.
///
/// Used as ground truth when validating Algorithm 1's progressive filling.
///
/// # Panics
///
/// Panics if the search space exceeds ~2^24 states (guards against
/// accidental blow-ups in tests).
pub fn brute_force_feasible(jobs: &[PlanningJob], grid: &SlotGrid, total_gpus: u32) -> bool {
    let horizon = jobs
        .iter()
        .map(|j| j.deadline_slot)
        .max()
        .unwrap_or(0)
        .min(8);
    if jobs.is_empty() {
        return true;
    }
    // Options per (job, slot): 0 plus each ladder step up to the cluster.
    let mut ladder = vec![0u32];
    let mut g = 1u32;
    while g <= total_gpus {
        ladder.push(g);
        g *= 2;
    }
    let cells = jobs.len() * horizon;
    let states = (ladder.len() as f64).powi(cells as i32);
    assert!(states <= (1 << 24) as f64, "brute force instance too large");
    let mut assignment = vec![0usize; cells];
    'outer: loop {
        // Check capacity + completion for the current assignment.
        let mut ok = true;
        for t in 0..horizon {
            let used: u32 = (0..jobs.len())
                .map(|i| ladder[assignment[i * horizon + t]])
                .sum();
            if used > total_gpus {
                ok = false;
                break;
            }
        }
        if ok {
            let all_done = jobs.iter().enumerate().all(|(i, job)| {
                let done: f64 = (0..horizon.min(job.deadline_slot))
                    .map(|t| job.iters_in_slot(ladder[assignment[i * horizon + t]], grid, t))
                    .sum();
                done + WORK_EPSILON >= job.remaining_iterations
            });
            if all_done {
                return true;
            }
        }
        // Next assignment (odometer).
        for cell in assignment.iter_mut() {
            *cell += 1;
            if *cell < ladder.len() {
                continue 'outer;
            }
            *cell = 0;
        }
        return false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdmissionController, ResourceAllocator};
    use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};
    use elasticflow_trace::Rng;

    fn linear_curve(k: f64, max: u32) -> ScalingCurve {
        let mut points = Vec::new();
        let mut g = 1u32;
        while g <= max {
            points.push(CurvePoint {
                gpus: g,
                iters_per_sec: k * g as f64,
            });
            g *= 2;
        }
        ScalingCurve::from_points(DnnModel::ResNet50, 64, points)
    }

    fn concave_curve(seed: u64, max: u32) -> ScalingCurve {
        // Random concave ladder: marginal gain per GPU decays.
        let mut rng = Rng::new(seed);
        let mut points = Vec::new();
        let mut tput = 1.0 + rng.uniform();
        let mut g = 1u32;
        let mut marginal_per_gpu = tput;
        while g <= max {
            points.push(CurvePoint {
                gpus: g,
                iters_per_sec: tput,
            });
            marginal_per_gpu *= rng.uniform_range(0.3, 0.9);
            tput += marginal_per_gpu * g as f64; // add g more GPUs
            g *= 2;
        }
        ScalingCurve::from_points(DnnModel::ResNet50, 64, points)
    }

    #[test]
    fn theorem1_matches_progressive_filling_on_linear_curves() {
        // On linear curves with power-of-two work quanta, three facts must
        // hold: (i) Algorithm 1 admitting implies a schedule exists (brute
        // force confirms); (ii) a schedule existing implies Theorem 1's
        // continuous bound holds; (iii) the three tests agree on the vast
        // majority of instances. Exact equivalence between the continuous
        // bound and the power-of-two ladder does not hold in general — a
        // continuous plan may use, say, 3 GPUs in a slot — which is
        // precisely why the paper restricts workers to powers of two and
        // re-derives admission via progressive filling.
        let grid = SlotGrid::uniform(1.0);
        let mut rng = Rng::new(42);
        let mut agreements = 0usize;
        let cases = 200usize;
        for case in 0..cases {
            let total = 4u32;
            let n = 1 + rng.uniform_usize(3);
            let mut linear_jobs = Vec::new();
            let mut planning_jobs = Vec::new();
            for i in 0..n {
                let deadline_slots = 1 + rng.uniform_usize(3);
                let work = (1u32 << rng.uniform_usize(3)) as f64; // 1, 2, 4
                linear_jobs.push(LinearJob {
                    id: JobId::new(i as u64),
                    work,
                    per_gpu_throughput: 1.0,
                    deadline: deadline_slots as f64,
                });
                planning_jobs.push(PlanningJob {
                    id: JobId::new(i as u64),
                    curve: linear_curve(1.0, total),
                    remaining_iterations: work,
                    deadline_slot: deadline_slots,
                });
            }
            let t1 = theorem1_feasible(&linear_jobs, total);
            let alg1 = AdmissionController::new(total)
                .check(&planning_jobs, &grid)
                .is_admitted();
            let brute = brute_force_feasible(&planning_jobs, &grid, total);
            if alg1 {
                assert!(brute, "case {case}: admitted but no schedule exists");
            }
            if brute {
                assert!(t1, "case {case}: schedulable but Theorem 1 rejects");
            }
            if t1 == brute && alg1 == brute {
                agreements += 1;
            }
        }
        assert!(
            agreements as f64 >= cases as f64 * 0.9,
            "only {agreements}/{cases} agreements"
        );
    }

    #[test]
    fn algorithm1_is_sound_on_random_concave_instances() {
        // Whenever Algorithm 1 admits, a feasible schedule must exist
        // (progressive filling's own plan is the witness, and brute force
        // must confirm it).
        let grid = SlotGrid::uniform(1.0);
        let mut rng = Rng::new(7);
        let mut admitted_count = 0;
        for case in 0..150 {
            let total = 4u32;
            let n = 1 + rng.uniform_usize(2);
            let jobs: Vec<PlanningJob> = (0..n)
                .map(|i| {
                    let curve = concave_curve(case * 10 + i as u64, total);
                    let max_tput = curve.iters_per_sec(curve.knee()).unwrap();
                    PlanningJob {
                        id: JobId::new(i as u64),
                        curve,
                        remaining_iterations: rng.uniform_range(0.5, 3.0) * max_tput,
                        deadline_slot: 1 + rng.uniform_usize(3),
                    }
                })
                .collect();
            if AdmissionController::new(total)
                .check(&jobs, &grid)
                .is_admitted()
            {
                admitted_count += 1;
                assert!(
                    brute_force_feasible(&jobs, &grid, total),
                    "case {case}: admitted but brute force finds no schedule"
                );
            }
        }
        assert!(
            admitted_count > 20,
            "test too weak: {admitted_count} admitted"
        );
    }

    #[test]
    fn algorithm2_stays_within_brute_force_feasibility() {
        // Every profile Algorithm 2 produces must itself be a feasible
        // schedule: deadlines met, capacity respected in every slot.
        let grid = SlotGrid::uniform(1.0);
        let mut rng = Rng::new(99);
        for case in 0..100 {
            let total = 4u32;
            let n = 1 + rng.uniform_usize(3);
            let jobs: Vec<PlanningJob> = (0..n)
                .map(|i| {
                    let curve = concave_curve(case * 31 + i as u64, total);
                    PlanningJob {
                        id: JobId::new(i as u64),
                        curve: curve.clone(),
                        remaining_iterations: rng.uniform_range(0.3, 2.0)
                            * curve.iters_per_sec(1).unwrap(),
                        deadline_slot: 1 + rng.uniform_usize(4),
                    }
                })
                .collect();
            let result = ResourceAllocator::new(total).allocate(&jobs, &grid);
            let horizon = jobs.iter().map(|j| j.deadline_slot).max().unwrap();
            for t in 0..horizon {
                let used: u32 = result.profiles.values().map(|p| p.gpus(t)).sum();
                assert!(used <= total, "case {case}: slot {t} over capacity");
            }
            for job in &jobs {
                if result.infeasible.contains(&job.id) {
                    continue;
                }
                let p = &result.profiles[&job.id];
                let done: f64 = p
                    .as_slice()
                    .iter()
                    .enumerate()
                    .map(|(t, &g)| job.iters_in_slot(g, &grid, t))
                    .sum();
                assert!(
                    done + 1e-6 >= job.remaining_iterations,
                    "case {case}: job {} unfinished",
                    job.id
                );
                assert!(
                    p.last_active_slot().unwrap() < job.deadline_slot,
                    "case {case}: job {} misses its deadline",
                    job.id
                );
            }
        }
    }

    #[test]
    fn greedy_matches_brute_force_gpu_time_on_two_job_instances() {
        // Theorem 2 (spot check): on tiny instances, no feasible plan uses
        // less total GPU-time than Algorithm 2's, once both plans are
        // required to meet the deadlines. We enumerate plans and compare.
        let grid = SlotGrid::uniform(1.0);
        let curve = ScalingCurve::from_points(
            DnnModel::ResNet50,
            64,
            vec![
                CurvePoint {
                    gpus: 1,
                    iters_per_sec: 1.0,
                },
                CurvePoint {
                    gpus: 2,
                    iters_per_sec: 1.5,
                },
                CurvePoint {
                    gpus: 4,
                    iters_per_sec: 2.0,
                },
            ],
        );
        let jobs = vec![
            PlanningJob {
                id: JobId::new(0),
                curve: curve.clone(),
                remaining_iterations: 1.5,
                deadline_slot: 1,
            },
            PlanningJob {
                id: JobId::new(1),
                curve: curve.clone(),
                remaining_iterations: 2.0,
                deadline_slot: 2,
            },
        ];
        let result = ResourceAllocator::new(4).allocate(&jobs, &grid);
        assert!(result.infeasible.is_empty());
        // Brute force the minimum GPU-time over all feasible plans.
        let ladder = [0u32, 1, 2, 4];
        let mut best = f64::INFINITY;
        for a0 in ladder {
            for b0 in ladder {
                for b1 in ladder {
                    if a0 + b0 > 4 || b1 > 4 {
                        continue;
                    }
                    let a_done = jobs[0].iters_in_slot(a0, &grid, 0);
                    let b_done =
                        jobs[1].iters_in_slot(b0, &grid, 0) + jobs[1].iters_in_slot(b1, &grid, 1);
                    if a_done + 1e-9 >= 1.5 && b_done + 1e-9 >= 2.0 {
                        best = best.min((a0 + b0 + b1) as f64);
                    }
                }
            }
        }
        // Algorithm 2's *minimum satisfactory* portion equals the optimum;
        // the boost phase may then spend leftover idle GPUs to finish jobs
        // earlier, which is allowed by constraint (7).
        let mss_gpu_time: f64 = {
            let ac = AdmissionController::new(4);
            match ac.check(&jobs, &grid) {
                crate::AdmissionOutcome::Admitted { plan } => {
                    plan.values().map(|p| p.gpu_seconds(&grid)).sum()
                }
                _ => panic!("instance known feasible"),
            }
        };
        assert!(
            (mss_gpu_time - best).abs() < 1e-9,
            "MSS GPU-time {mss_gpu_time} vs brute-force optimum {best}"
        );
    }
}
