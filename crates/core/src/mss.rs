//! Minimum Satisfactory Share (paper §4.1).
//!
//! The scaling curves of DL jobs are concave, so the *per-GPU* throughput
//! drops as workers are added: training on one GPU is the most
//! GPU-time-efficient. Because jobs have deadlines, though, one GPU may be
//! too slow — the **minimum satisfactory share** is the least number of
//! GPUs that still meets the deadline, and allocating exactly it minimizes
//! resource usage subject to the deadline.

use elasticflow_perfmodel::ScalingCurve;

/// The smallest worker count on the curve's ladder that finishes
/// `remaining_iterations` within `window_seconds`, or `None` when even the
/// knee allocation is too slow.
///
/// This is the idle-cluster special case the paper solves "with a binary
/// search"; the loaded-cluster generalization is
/// [`crate::progressive_filling`].
///
/// # Example
///
/// ```
/// use elasticflow_core::mss::minimum_satisfactory_share;
/// use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};
///
/// // Paper §4.1 example: throughputs 1, 1.5, 2 at 1, 2, 4 GPUs; job of 1
/// // work unit. Deadline 1.0 => 1 GPU suffices; deadline 2/3 => 2 GPUs.
/// let curve = ScalingCurve::from_points(DnnModel::ResNet50, 64, vec![
///     CurvePoint { gpus: 1, iters_per_sec: 1.0 },
///     CurvePoint { gpus: 2, iters_per_sec: 1.5 },
///     CurvePoint { gpus: 4, iters_per_sec: 2.0 },
/// ]);
/// assert_eq!(minimum_satisfactory_share(&curve, 1.0, 1.0), Some(1));
/// assert_eq!(minimum_satisfactory_share(&curve, 1.0, 2.0 / 3.0), Some(2));
/// assert_eq!(minimum_satisfactory_share(&curve, 1.0, 0.1), None);
/// ```
pub fn minimum_satisfactory_share(
    curve: &ScalingCurve,
    remaining_iterations: f64,
    window_seconds: f64,
) -> Option<u32> {
    if window_seconds <= 0.0 {
        return None;
    }
    if !window_seconds.is_finite() {
        return Some(1);
    }
    let needed = remaining_iterations / window_seconds;
    // Binary search over the ladder: throughput is monotone up to the knee
    // and the ladder is tiny, so a lower-bound scan is equivalent; we use
    // binary search over the monotone prefix for fidelity to the paper.
    let knee = curve.knee();
    let mut lo = 0u32; // exponent
    let mut hi = knee.trailing_zeros();
    if curve.iters_per_sec(knee).unwrap_or(0.0) + 1e-12 < needed {
        return None;
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        let gpus = 1u32 << mid;
        if curve.iters_per_sec(gpus).unwrap_or(0.0) + 1e-12 >= needed {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(1u32 << lo)
}

/// GPU-time (GPU-seconds) consumed when running the job at its minimum
/// satisfactory share for the given window — the "resource usage" the
/// paper's admission control minimizes.
pub fn mss_gpu_seconds(
    curve: &ScalingCurve,
    remaining_iterations: f64,
    window_seconds: f64,
) -> Option<f64> {
    let share = minimum_satisfactory_share(curve, remaining_iterations, window_seconds)?;
    curve.gpu_time(share, remaining_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_perfmodel::{CurvePoint, DnnModel, Interconnect};

    fn fig4_curve() -> ScalingCurve {
        ScalingCurve::from_points(
            DnnModel::ResNet50,
            64,
            vec![
                CurvePoint {
                    gpus: 1,
                    iters_per_sec: 1.0,
                },
                CurvePoint {
                    gpus: 2,
                    iters_per_sec: 1.5,
                },
                CurvePoint {
                    gpus: 4,
                    iters_per_sec: 2.0,
                },
            ],
        )
    }

    #[test]
    fn looser_deadlines_need_fewer_gpus() {
        let curve = fig4_curve();
        let mut last = u32::MAX;
        for window in [0.5, 0.7, 1.0, 2.0, 10.0] {
            if let Some(s) = minimum_satisfactory_share(&curve, 1.0, window) {
                assert!(s <= last, "window {window}: share {s} > previous {last}");
                last = s;
            }
        }
        assert_eq!(minimum_satisfactory_share(&curve, 1.0, 10.0), Some(1));
    }

    #[test]
    fn infeasible_when_knee_is_too_slow() {
        let curve = fig4_curve();
        // Needs throughput 4 but the knee gives 2.
        assert_eq!(minimum_satisfactory_share(&curve, 4.0, 1.0), None);
    }

    #[test]
    fn exact_boundary_is_satisfied() {
        let curve = fig4_curve();
        // Throughput 1.5 at 2 GPUs: 1.5 work in 1 s is exactly feasible.
        assert_eq!(minimum_satisfactory_share(&curve, 1.5, 1.0), Some(2));
    }

    #[test]
    fn infinite_window_means_one_gpu() {
        let curve = fig4_curve();
        assert_eq!(
            minimum_satisfactory_share(&curve, 1e9, f64::INFINITY),
            Some(1)
        );
    }

    #[test]
    fn gpu_seconds_grow_with_tightness() {
        // Paper §4.1: tighter deadlines force bigger shares, which waste
        // GPU time under concavity.
        let curve = fig4_curve();
        let loose = mss_gpu_seconds(&curve, 1.0, 1.0).unwrap();
        let tight = mss_gpu_seconds(&curve, 1.0, 0.5).unwrap();
        assert!((loose - 1.0).abs() < 1e-12);
        assert!((tight - 2.0).abs() < 1e-12);
        assert!(tight > loose);
    }

    #[test]
    fn real_curves_binary_search_agrees_with_scan() {
        let net = Interconnect::paper_testbed();
        for (model, batches) in elasticflow_perfmodel::PAPER_TABLE1 {
            for &b in batches {
                let curve = ScalingCurve::build(model, b, &net);
                for window in [600.0, 1_800.0, 3_600.0, 14_400.0] {
                    let work = 2_000.0;
                    let fast = minimum_satisfactory_share(&curve, work, window);
                    // Reference: linear scan over the ladder.
                    let mut scan = None;
                    let knee = curve.knee();
                    let mut g = 1;
                    while g <= knee {
                        if curve.iters_per_sec(g).unwrap() + 1e-12 >= work / window {
                            scan = Some(g);
                            break;
                        }
                        g *= 2;
                    }
                    assert_eq!(fast, scan, "{model} gbs={b} window={window}");
                }
            }
        }
    }
}
