//! Slot-based planning primitives shared by Algorithms 1 and 2.
//!
//! ElasticFlow's formulation (§4.1, conditions (2)–(3)) discretizes time
//! into slots and reasons about per-slot GPU allocations `x_i(t)`. In the
//! running system "slot 0" is the remainder of the current scheduling
//! interval and later slots have the full interval length.

use std::cell::RefCell;

use elasticflow_perfmodel::ScalingCurve;
use elasticflow_trace::JobId;
use serde::{Deserialize, Serialize};

/// The shared work-completion tolerance of the planning stack, in
/// iterations.
///
/// Progressive filling accumulates per-slot iteration counts in floating
/// point, so a job whose work is an exact multiple of its per-slot
/// throughput can land a few ulps short of `remaining_iterations` purely
/// from discretization drift (summing `rate * duration` slot by slot is
/// not associative). Every "has this job finished its work?" comparison
/// therefore allows this absolute slack: `done + WORK_EPSILON >=
/// remaining`. The value must be a single shared constant — if the
/// planner, the trimmer, the runtime auditor, and the theory oracles
/// drift to different epsilons, they start disagreeing about which plans
/// are feasible (enforced by lint rule EF-L005).
pub const WORK_EPSILON: f64 = 1e-9; // elasticflow-lint: allow(EF-L005): canonical definition site of the shared epsilon

/// The discrete slot grid anchored at "now".
///
/// # Example
///
/// ```
/// use elasticflow_core::SlotGrid;
///
/// // 100 s remain in the current slot; later slots are 300 s.
/// let grid = SlotGrid::new(100.0, 300.0);
/// assert_eq!(grid.duration(0), 100.0);
/// assert_eq!(grid.duration(3), 300.0);
/// // A deadline 500 s away covers slot 0 (100 s) plus one full slot.
/// assert_eq!(grid.slots_before(500.0), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotGrid {
    first: f64,
    rest: f64,
}

impl SlotGrid {
    /// Creates a grid whose slot 0 lasts `first` seconds and whose
    /// subsequent slots last `rest` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < first <= rest` and both are finite.
    pub fn new(first: f64, rest: f64) -> Self {
        assert!(
            first.is_finite() && rest.is_finite() && first > 0.0 && first <= rest,
            "need 0 < first ({first}) <= rest ({rest})"
        );
        SlotGrid { first, rest }
    }

    /// A grid of uniform slots.
    pub fn uniform(slot_seconds: f64) -> Self {
        SlotGrid::new(slot_seconds, slot_seconds)
    }

    /// Duration of slot `t`, seconds.
    pub fn duration(&self, t: usize) -> f64 {
        if t == 0 {
            self.first
        } else {
            self.rest
        }
    }

    /// Number of *complete* slots that fit before a deadline `window`
    /// seconds from now — the conservative horizon used by admission
    /// control (a partial final slot is not counted, so guarantees are
    /// never optimistic).
    pub fn slots_before(&self, window: f64) -> usize {
        if !window.is_finite() {
            return usize::MAX;
        }
        if window < self.first {
            return 0;
        }
        elasticflow_cluster::num::slots_floor((window - self.first) / self.rest)
            .map_or(usize::MAX, |n| n.saturating_add(1))
    }

    /// The regular slot length.
    pub fn rest_seconds(&self) -> f64 {
        self.rest
    }
}

/// What the planner needs to know about one job.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanningJob {
    /// Job id.
    pub id: JobId,
    /// Profiled scaling curve.
    pub curve: ScalingCurve,
    /// Iterations left to run.
    pub remaining_iterations: f64,
    /// Number of complete slots available before the deadline
    /// (`usize::MAX` for best-effort jobs).
    pub deadline_slot: usize,
}

impl PlanningJob {
    /// Iterations completed in slot `t` when running `gpus` workers.
    pub fn iters_in_slot(&self, gpus: u32, grid: &SlotGrid, t: usize) -> f64 {
        self.curve.iters_per_sec(gpus).unwrap_or(0.0) * grid.duration(t)
    }

    /// Exact (fractional) time at which the job finishes its remaining
    /// work under `profile`, seconds from now — the `finish_time`
    /// Algorithm 2 compares (line 10). `None` if the profile never
    /// completes the job.
    pub fn finish_seconds(&self, profile: &AllocationProfile, grid: &SlotGrid) -> Option<f64> {
        let mut remaining = self.remaining_iterations;
        let mut elapsed = 0.0;
        for (t, &g) in profile.as_slice().iter().enumerate() {
            let rate = self.curve.iters_per_sec(g).unwrap_or(0.0);
            let d = grid.duration(t);
            if rate * d + 1e-12 >= remaining {
                return Some(elapsed + if rate > 0.0 { remaining / rate } else { 0.0 });
            }
            remaining -= rate * d;
            elapsed += d;
        }
        None
    }
}

/// A per-slot GPU allocation for one job: the paper's `x_i(t)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationProfile {
    gpus: Vec<u32>,
}

impl AllocationProfile {
    /// Wraps a per-slot vector (index = slot).
    pub fn new(gpus: Vec<u32>) -> Self {
        AllocationProfile { gpus }
    }

    /// GPUs in slot `t` (0 beyond the profile's horizon).
    pub fn gpus(&self, t: usize) -> u32 {
        self.gpus.get(t).copied().unwrap_or(0)
    }

    /// The profile's horizon (number of slots with entries).
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// `true` when the profile allocates nothing.
    pub fn is_empty(&self) -> bool {
        self.gpus.iter().all(|&g| g == 0)
    }

    /// Total GPU-time of the profile in GPU-slots weighted by slot
    /// durations (the quantity Algorithm 2 minimizes).
    pub fn gpu_seconds(&self, grid: &SlotGrid) -> f64 {
        self.gpus
            .iter()
            .enumerate()
            .map(|(t, &g)| g as f64 * grid.duration(t))
            .sum()
    }

    /// Index of the last slot with a non-zero allocation, if any — a proxy
    /// for the job's finish slot under this profile.
    pub fn last_active_slot(&self) -> Option<usize> {
        self.gpus.iter().rposition(|&g| g > 0)
    }

    /// The raw per-slot vector.
    pub fn as_slice(&self) -> &[u32] {
        &self.gpus
    }

    /// Unwraps the per-slot vector, giving the buffer back to the caller
    /// (planners recycle it through their fill scratch instead of
    /// allocating a fresh vector per profile).
    pub fn into_gpus(self) -> Vec<u32> {
        self.gpus
    }
}

/// Derived views of a ledger's committed vector, rebuilt lazily after
/// each mutation: GPU-slot prefix sums (`prefix[t]` = GPUs committed
/// across slots `[0, t)`), the peak commitment, and the horizon. Turns
/// the admission loop's repeated O(slots) scans into O(1) amortized
/// lookups.
///
/// Mutations mark the cache stale instead of dropping it: the next read
/// rebuilds *in place*, reusing the prefix and run-end buffers. The
/// admission hot path alternates commit/uncommit with reads thousands of
/// times per decision, so rebuild-without-realloc is what keeps the
/// ledger off the allocator entirely in steady state.
#[derive(Debug, Default)]
struct LedgerCache {
    /// `true` when the views below match the committed vector. The
    /// default (`false`) forces a first rebuild, so empty buffers are
    /// never served.
    fresh: bool,
    prefix: Vec<u64>,
    peak: u32,
    horizon: usize,
    /// `run_end[t]` is the exclusive end of the maximal run of slots with
    /// `committed` equal to `committed[t]` that contains `t`. Lets slot
    /// walks process whole constant-commitment regions at once.
    run_end: Vec<usize>,
}

impl LedgerCache {
    /// Recomputes every view from `committed`, reusing the buffers.
    fn rebuild(&mut self, committed: &[u32]) {
        self.prefix.clear();
        self.prefix.reserve(committed.len() + 1);
        self.prefix.push(0u64);
        let mut sum = 0u64;
        let mut peak = 0u32;
        for &c in committed {
            sum += u64::from(c);
            peak = peak.max(c);
            self.prefix.push(sum);
        }
        self.peak = peak;
        self.horizon = committed
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        self.run_end.clear();
        self.run_end.resize(committed.len(), 0);
        for t in (0..committed.len()).rev() {
            self.run_end[t] = if committed.get(t + 1) == Some(&committed[t]) {
                self.run_end[t + 1]
            } else {
                t + 1
            };
        }
        self.fresh = true;
    }
}

/// Committed GPUs per slot across all already-planned jobs: the
/// `sum_{k < i} x_k(t)` term of Algorithm 1, line 15.
///
/// Equality, cloning, and serialization are all defined over the
/// committed vector alone; the interior-mutability cache is a pure
/// acceleration structure that readers rebuild on demand.
#[derive(Default)]
pub struct ReservationLedger {
    committed: Vec<u32>,
    cache: RefCell<LedgerCache>,
}

impl std::fmt::Debug for ReservationLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReservationLedger")
            .field("committed", &self.committed)
            .finish()
    }
}

impl Clone for ReservationLedger {
    fn clone(&self) -> Self {
        ReservationLedger {
            committed: self.committed.clone(),
            cache: RefCell::default(),
        }
    }
}

impl PartialEq for ReservationLedger {
    fn eq(&self, other: &Self) -> bool {
        self.committed == other.committed
    }
}

impl Eq for ReservationLedger {}

/// Serialization mirror of [`ReservationLedger`], keeping the on-disk
/// shape identical to the former derived form (`{"committed": [...]}`)
/// so existing snapshots stay readable.
#[derive(Serialize, Deserialize)]
struct LedgerRepr {
    committed: Vec<u32>,
}

impl Serialize for ReservationLedger {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        LedgerRepr {
            committed: self.committed.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for ReservationLedger {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = LedgerRepr::deserialize(deserializer)?;
        Ok(ReservationLedger {
            committed: repr.committed,
            cache: RefCell::default(),
        })
    }
}

impl ReservationLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        ReservationLedger::default()
    }

    /// GPUs already committed in slot `t`.
    pub fn committed(&self, t: usize) -> u32 {
        self.committed.get(t).copied().unwrap_or(0)
    }

    /// GPUs still free in slot `t` on a cluster of `total` GPUs.
    pub fn free(&self, t: usize, total: u32) -> u32 {
        total.saturating_sub(self.committed(t))
    }

    /// Adds a profile's reservations.
    pub fn commit(&mut self, profile: &AllocationProfile) {
        if self.committed.len() < profile.len() {
            self.committed.resize(profile.len(), 0);
        }
        for (t, &g) in profile.as_slice().iter().enumerate() {
            self.committed[t] += g;
        }
        self.cache.get_mut().fresh = false;
    }

    /// Removes a previously committed profile.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the profile was never committed.
    pub fn uncommit(&mut self, profile: &AllocationProfile) {
        for (t, &g) in profile.as_slice().iter().enumerate() {
            debug_assert!(self.committed.get(t).copied().unwrap_or(0) >= g);
            if let Some(c) = self.committed.get_mut(t) {
                *c -= g;
            }
        }
        // Keep the representation canonical (no trailing zero slots) so
        // two ledgers holding the same reservations compare equal no
        // matter which commit/uncommit sequence produced them.
        while self.committed.last() == Some(&0) {
            self.committed.pop();
        }
        self.cache.get_mut().fresh = false;
    }

    /// Runs `f` against the cached derived views, rebuilding them first
    /// if a mutation invalidated the cache. O(slots) on the first read
    /// after a mutation (reusing the cache's buffers), O(1) afterwards.
    fn with_cache<R>(&self, f: impl FnOnce(&LedgerCache) -> R) -> R {
        let mut guard = self.cache.borrow_mut();
        if !guard.fresh {
            guard.rebuild(&self.committed);
        }
        f(&guard)
    }

    /// Total GPU-slots committed across slots `[0, t)` — an O(1)
    /// amortized prefix-sum lookup (slots past the ledger's end
    /// contribute zero).
    pub fn committed_before(&self, t: usize) -> u64 {
        self.with_cache(|c| c.prefix[t.min(c.prefix.len() - 1)])
    }

    /// The highest committed value across all slots.
    pub fn peak(&self) -> u32 {
        self.with_cache(|c| c.peak)
    }

    /// First slot index from which nothing is committed (every slot at or
    /// beyond it is fully free). Lets planners switch to an analytic fast
    /// path instead of walking empty slots one by one.
    pub fn horizon(&self) -> usize {
        self.with_cache(|c| c.horizon)
    }

    /// Exclusive end of the maximal run of slots whose committed value
    /// equals `committed(t)`, starting at or before `t`. Past the ledger's
    /// end every slot is committed 0 forever, so the run is unbounded
    /// (`usize::MAX`). O(1) amortized; slot walks use it to handle whole
    /// constant-commitment regions at once.
    pub fn run_end(&self, t: usize) -> usize {
        self.with_cache(|c| c.run_end.get(t).copied().unwrap_or(usize::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_before_boundaries() {
        let grid = SlotGrid::new(100.0, 300.0);
        assert_eq!(grid.slots_before(99.0), 0);
        assert_eq!(grid.slots_before(100.0), 1);
        assert_eq!(grid.slots_before(399.0), 1);
        assert_eq!(grid.slots_before(400.0), 2);
        assert_eq!(grid.slots_before(f64::INFINITY), usize::MAX);
    }

    #[test]
    fn uniform_grid() {
        let grid = SlotGrid::uniform(60.0);
        assert_eq!(grid.duration(0), 60.0);
        assert_eq!(grid.duration(5), 60.0);
        assert_eq!(grid.slots_before(180.0), 3);
    }

    #[test]
    #[should_panic(expected = "need 0 < first")]
    fn grid_rejects_first_longer_than_rest() {
        let _ = SlotGrid::new(400.0, 300.0);
    }

    #[test]
    fn profile_accounting() {
        let grid = SlotGrid::uniform(10.0);
        let p = AllocationProfile::new(vec![1, 0, 4]);
        assert_eq!(p.gpus(0), 1);
        assert_eq!(p.gpus(1), 0);
        assert_eq!(p.gpus(2), 4);
        assert_eq!(p.gpus(99), 0);
        assert_eq!(p.gpu_seconds(&grid), 50.0);
        assert_eq!(p.last_active_slot(), Some(2));
        assert!(!p.is_empty());
        assert!(AllocationProfile::new(vec![0, 0]).is_empty());
    }

    #[test]
    fn ledger_commit_uncommit() {
        let mut ledger = ReservationLedger::new();
        let a = AllocationProfile::new(vec![2, 2, 0]);
        let b = AllocationProfile::new(vec![1, 4, 4, 4]);
        ledger.commit(&a);
        ledger.commit(&b);
        assert_eq!(ledger.committed(0), 3);
        assert_eq!(ledger.committed(1), 6);
        assert_eq!(ledger.committed(3), 4);
        assert_eq!(ledger.free(1, 8), 2);
        assert_eq!(ledger.peak(), 6);
        ledger.uncommit(&a);
        assert_eq!(ledger.committed(0), 1);
        assert_eq!(ledger.committed(1), 4);
    }

    #[test]
    fn free_saturates_at_zero() {
        let mut ledger = ReservationLedger::new();
        ledger.commit(&AllocationProfile::new(vec![16]));
        assert_eq!(ledger.free(0, 8), 0);
    }

    #[test]
    fn prefix_sums_track_mutations() {
        let mut ledger = ReservationLedger::new();
        assert_eq!(ledger.committed_before(5), 0);
        let a = AllocationProfile::new(vec![2, 2, 0]);
        let b = AllocationProfile::new(vec![1, 4, 4, 4]);
        ledger.commit(&a);
        // Prime the cache, then mutate again: the stale prefix sums must
        // be rebuilt, not served.
        assert_eq!(ledger.committed_before(3), 4);
        ledger.commit(&b);
        assert_eq!(ledger.committed_before(0), 0);
        assert_eq!(ledger.committed_before(1), 3);
        assert_eq!(ledger.committed_before(2), 9);
        assert_eq!(ledger.committed_before(100), 17);
        assert_eq!(ledger.peak(), 6);
        assert_eq!(ledger.horizon(), 4);
        ledger.uncommit(&b);
        assert_eq!(ledger.committed_before(100), 4);
        assert_eq!(ledger.peak(), 2);
        assert_eq!(ledger.horizon(), 2);
    }

    #[test]
    fn run_end_spans_constant_regions() {
        let mut ledger = ReservationLedger::new();
        ledger.commit(&AllocationProfile::new(vec![2, 2, 2, 5, 5, 0, 0, 1]));
        assert_eq!(ledger.run_end(0), 3);
        assert_eq!(ledger.run_end(1), 3);
        assert_eq!(ledger.run_end(2), 3);
        assert_eq!(ledger.run_end(3), 5);
        assert_eq!(ledger.run_end(5), 7);
        assert_eq!(ledger.run_end(7), 8);
        // Beyond the committed vector every slot is free forever.
        assert_eq!(ledger.run_end(8), usize::MAX);
        assert_eq!(ledger.run_end(1000), usize::MAX);
        // The index tracks mutations like the other cached views.
        ledger.commit(&AllocationProfile::new(vec![0, 0, 0, 0, 0, 2]));
        assert_eq!(ledger.committed(5), 2);
        assert_eq!(ledger.run_end(3), 5);
        assert_eq!(ledger.run_end(5), 6);
        assert_eq!(ledger.run_end(6), 7);
    }

    #[test]
    fn ledger_identity_ignores_cache_state() {
        let mut warm = ReservationLedger::new();
        warm.commit(&AllocationProfile::new(vec![1, 2]));
        let _ = warm.committed_before(2); // populate the cache
        let mut cold = ReservationLedger::new();
        cold.commit(&AllocationProfile::new(vec![1, 2]));
        assert_eq!(warm, cold);
        assert_eq!(warm.clone(), cold);
        let json = serde_json::to_string(&warm).unwrap();
        assert_eq!(json, serde_json::to_string(&cold).unwrap());
        let back: ReservationLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, warm);
    }
}
