//! ElasticFlow's core contribution: deadline-guaranteed elastic scheduling.
//!
//! This crate implements the three algorithms of the paper's §4 on top of
//! the substrates in the sibling crates:
//!
//! * **Minimum Satisfactory Share** ([`mss`]) — the least share of GPUs a
//!   job needs to meet its deadline under a concave scaling curve (§4.1);
//! * **Admission control** ([`AdmissionController`], paper Algorithm 1) —
//!   progressive filling over discrete time slots decides whether a new
//!   job's deadline can be guaranteed without breaking any admitted job's;
//! * **Elastic resource allocation** ([`ResourceAllocator`], paper
//!   Algorithm 2) — leftover GPUs go to the job with the highest *marginal
//!   return* (GPU-time saved per extra GPU), provably optimal for concave
//!   curves (Theorem 2; checked against brute force in [`theory`]).
//!
//! [`ElasticFlowScheduler`] packages the three into an
//! [`elasticflow_sched::Scheduler`] the simulator can drive, including the
//! best-effort extension of §4.4. [`EdfWithAdmission`] and
//! [`EdfWithElastic`] are the ablation variants of the paper's Fig. 9.
//!
//! # Example
//!
//! ```
//! use elasticflow_cluster::ClusterSpec;
//! use elasticflow_core::ElasticFlowScheduler;
//! use elasticflow_perfmodel::Interconnect;
//! use elasticflow_sim::{SimConfig, Simulation};
//! use elasticflow_trace::TraceConfig;
//!
//! let spec = ClusterSpec::small_testbed();
//! let trace = TraceConfig::testbed_small(1).generate(&Interconnect::from_spec(&spec));
//! let mut ef = ElasticFlowScheduler::new();
//! let report = Simulation::new(spec, SimConfig::default()).run(&trace, &mut ef);
//! // Every job ElasticFlow admits meets its deadline (modulo scaling
//! // pauses); dropped jobs are the ones that could never have met theirs.
//! assert!(report.deadline_satisfactory_ratio() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod alloc;
#[cfg(feature = "audit")]
mod audit;
mod filling;
pub mod mss;
pub mod online;
mod plan;
pub(crate) mod scheduler;
pub mod theory;
mod variants;

pub use admission::{AdmissionController, AdmissionDenial, AdmissionOutcome, AdmissionSet};
pub use alloc::ResourceAllocator;
pub use filling::{
    progressive_filling, progressive_filling_from, progressive_filling_with, FillScratch,
};
pub use online::{AdvanceReport, OnlineAdmission, OnlineArrival};
pub use plan::{AllocationProfile, PlanningJob, ReservationLedger, SlotGrid, WORK_EPSILON};
pub use scheduler::ElasticFlowScheduler;
pub use variants::{EdfWithAdmission, EdfWithElastic};
