//! Admission control (paper Algorithm 1).

use std::collections::BTreeMap;

use elasticflow_sched::CapacityShortfall;
use elasticflow_trace::JobId;

use crate::filling::{progressive_filling_from, progressive_filling_with, FillScratch};
use crate::{AllocationProfile, PlanningJob, ReservationLedger, SlotGrid};

/// Sort key of Algorithm 1's deadline order (ties broken by job id so
/// the fill order — and with it every downstream plan — is total).
fn fill_key(job: &PlanningJob) -> (usize, JobId) {
    (job.deadline_slot, job.id)
}

/// A failed admission: the first unsatisfiable job plus the capacity
/// arithmetic at the point of failure.
///
/// Because Algorithm 1 fills in deadline order against the ledger of
/// strictly earlier jobs only, the ledger state when a fill fails is
/// identical between a from-scratch [`AdmissionController::check`] and
/// the incremental [`AdmissionSet`] paths (the incremental admission
/// invariant) — so the shortfall here is bit-identical however the
/// question was asked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionDenial {
    /// The first job (in fill order) that cannot be satisfied.
    pub blocking_job: JobId,
    /// The blocking job's minimum demand vs. the free capacity left in
    /// its deadline window.
    pub shortfall: CapacityShortfall,
}

/// Capacity arithmetic at a fill failure: `job`'s minimum-satisfactory
/// GPU-slot demand vs. the GPU-slots `ledger` leaves usable in its
/// window.
///
/// Demand prices the cheapest deadline-meeting schedule: the smallest
/// ladder allocation that finishes in time, held through the window.
/// When even the job's largest usable allocation is too slow, demand
/// scales past the concurrency cap by the time actually needed at that
/// size — so a candidate that is infeasible anywhere always shows a
/// positive shortfall. The free side is clamped per slot to the same
/// largest usable allocation: capacity the job could never occupy does
/// not count. A zero shortfall can still occur when the decline came
/// from scaling-curve nonlinearity or slot fragmentation (enough usable
/// capacity exists, but no feasible shape reaches it).
fn window_shortfall(
    job: &PlanningJob,
    ledger: &ReservationLedger,
    grid: &SlotGrid,
    total_gpus: u32,
) -> CapacityShortfall {
    let rest = grid.rest_seconds();
    let window_end = job.deadline_slot;
    // Largest pow2 ladder size the job can actually occupy here: bounded
    // by its scaling curve and the cluster size.
    let mut g_max = 0u32;
    let mut g_max_rate = 0.0_f64;
    let mut g = 1u32;
    while g <= job.curve.max_gpus() && g <= total_gpus {
        if let Some(rate) = job.curve.iters_per_sec(g).filter(|r| *r > 0.0) {
            g_max = g;
            g_max_rate = rate;
        }
        match g.checked_mul(2) {
            Some(next) => g = next,
            None => break,
        }
    }
    // Seconds from now to the deadline boundary (slot 0 may be short).
    let window_seconds = if window_end == 0 {
        0.0
    } else {
        grid.duration(0) + (window_end - 1) as f64 * rest
    };
    let mut demand_gpu_slots = 0.0;
    if g_max > 0 {
        let mut mss = None;
        let mut g = 1u32;
        while g <= g_max {
            if job
                .curve
                .iters_per_sec(g)
                .is_some_and(|r| r * window_seconds >= job.remaining_iterations)
            {
                mss = Some(g);
                break;
            }
            g *= 2;
        }
        demand_gpu_slots = match mss {
            Some(g) => f64::from(g) * window_seconds / rest,
            None => {
                // Even g_max can't finish by the deadline: charge the
                // seconds it would actually take at full tilt
                // (g_max_rate > 0 whenever g_max > 0).
                f64::from(g_max) * (job.remaining_iterations / g_max_rate) / rest
            }
        };
    }
    // Usable free GPU-slots in the window, walking constant-commitment
    // runs (O(runs), not O(slots)); everything past the committed
    // horizon is fully free, still clamped to g_max.
    let cap = f64::from(g_max);
    let scan_end = window_end.min(ledger.horizon());
    let mut free_gpu_slots = 0.0_f64;
    let mut t = 0usize;
    while t < scan_end {
        let run_end = ledger.run_end(t).min(scan_end);
        free_gpu_slots += f64::from(ledger.free(t, total_gpus)).min(cap) * (run_end - t) as f64;
        t = run_end;
    }
    if window_end > scan_end {
        free_gpu_slots += f64::from(total_gpus).min(cap) * (window_end - scan_end) as f64;
    }
    if window_end > 0 {
        // Slot 0 can be shorter than the rest; weight its free GPUs by
        // its actual duration so both sides use the same slot unit.
        free_gpu_slots +=
            f64::from(ledger.free(0, total_gpus)).min(cap) * (grid.duration(0) / rest - 1.0);
    }
    CapacityShortfall {
        window_slots: window_end as u64,
        demand_gpu_slots,
        free_gpu_slots,
    }
}

/// Result of an admission check over a set of jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionOutcome {
    /// Every job's deadline can be guaranteed; the witness plan assigns a
    /// minimum-satisfactory profile per job.
    Admitted {
        /// Per-job minimum satisfactory profiles, keyed by job id.
        plan: BTreeMap<JobId, AllocationProfile>,
    },
    /// No feasible plan exists; the named job is the first (in deadline
    /// order) that cannot be satisfied.
    Rejected {
        /// The unsatisfiable job.
        blocking_job: JobId,
        /// The blocking job's minimum demand vs. the capacity left in
        /// its window when the fill failed.
        shortfall: CapacityShortfall,
    },
}

impl AdmissionOutcome {
    /// `true` for the admitted case.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionOutcome::Admitted { .. })
    }
}

/// ElasticFlow's admission controller: sorts jobs by deadline and
/// progressively fills each against the reservations of the earlier ones
/// (paper Algorithm 1). A new job is admitted iff the whole set — existing
/// admitted jobs plus the newcomer — remains satisfiable.
///
/// # Example
///
/// ```
/// use elasticflow_core::{AdmissionController, PlanningJob, SlotGrid};
/// use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};
/// use elasticflow_trace::JobId;
///
/// let curve = ScalingCurve::from_points(DnnModel::ResNet50, 64, vec![
///     CurvePoint { gpus: 1, iters_per_sec: 1.0 },
///     CurvePoint { gpus: 2, iters_per_sec: 1.5 },
/// ]);
/// let job = |id: u64, work: f64, slots: usize| PlanningJob {
///     id: JobId::new(id),
///     curve: curve.clone(),
///     remaining_iterations: work,
///     deadline_slot: slots,
/// };
/// let ac = AdmissionController::new(2);
/// let grid = SlotGrid::uniform(1.0);
/// // Two 1-GPU jobs with enough slack fit on 2 GPUs…
/// assert!(ac.check(&[job(0, 2.0, 2), job(1, 2.0, 2)], &grid).is_admitted());
/// // …a third does not.
/// let out = ac.check(&[job(0, 2.0, 2), job(1, 2.0, 2), job(2, 2.0, 2)], &grid);
/// assert!(!out.is_admitted());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionController {
    total_gpus: u32,
}

impl AdmissionController {
    /// Creates a controller for a cluster of `total_gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `total_gpus` is zero.
    pub fn new(total_gpus: u32) -> Self {
        assert!(total_gpus > 0, "cluster must have GPUs");
        AdmissionController { total_gpus }
    }

    /// The cluster size this controller plans for.
    pub fn total_gpus(&self) -> u32 {
        self.total_gpus
    }

    /// Checks whether all `jobs` can meet their deadlines together
    /// (Algorithm 1 lines 2–9: sort by deadline, progressively fill each).
    pub fn check(&self, jobs: &[PlanningJob], grid: &SlotGrid) -> AdmissionOutcome {
        let mut order: Vec<&PlanningJob> = jobs.iter().collect();
        order.sort_by_key(|j| fill_key(j));
        let mut ledger = ReservationLedger::new();
        let mut plan = BTreeMap::new();
        let mut scratch = FillScratch::new();
        for job in order {
            match progressive_filling_with(job, &ledger, grid, self.total_gpus, None, &mut scratch)
            {
                Some(profile) => {
                    ledger.commit(&profile);
                    plan.insert(job.id, profile);
                }
                None => {
                    return AdmissionOutcome::Rejected {
                        blocking_job: job.id,
                        shortfall: window_shortfall(job, &ledger, grid, self.total_gpus),
                    }
                }
            }
        }
        AdmissionOutcome::Admitted { plan }
    }

    /// Runs Algorithm 1's fill over `jobs` once, *keeping* the result:
    /// the returned [`AdmissionSet`] owns the deadline-ordered feasible
    /// jobs, their minimum-satisfactory profiles, and the committed
    /// ledger, so later arrivals can be answered incrementally via
    /// [`AdmissionSet::whatif_admit`] instead of refilling every job.
    /// The second element lists the lapsed jobs (infeasible against the
    /// earlier ones; they commit nothing, exactly as in
    /// [`AdmissionController::feasible_subset`]).
    pub fn fill(&self, jobs: &[PlanningJob], grid: &SlotGrid) -> (AdmissionSet, Vec<JobId>) {
        self.fill_owned(jobs.to_vec(), grid)
    }

    /// [`AdmissionController::fill`] taking the jobs by value, so callers
    /// that already own them (the online advance path rebuilds the whole
    /// set every boundary crossing) avoid one clone of every job's curve.
    /// Identical results: the fill order is the same total `fill_key`
    /// order.
    pub fn fill_owned(
        &self,
        mut jobs: Vec<PlanningJob>,
        grid: &SlotGrid,
    ) -> (AdmissionSet, Vec<JobId>) {
        jobs.sort_by_key(fill_key);
        let mut set = AdmissionSet {
            total_gpus: self.total_gpus,
            jobs: Vec::with_capacity(jobs.len()),
            profiles: Vec::with_capacity(jobs.len()),
            targets: Vec::with_capacity(jobs.len()),
            ledger: ReservationLedger::new(),
        };
        let mut lapsed = Vec::new();
        let mut scratch = FillScratch::new();
        for job in jobs {
            match progressive_filling_from(
                &job,
                &set.ledger,
                grid,
                self.total_gpus,
                1,
                &mut scratch,
            ) {
                Some((profile, target)) => {
                    set.ledger.commit(&profile);
                    set.jobs.push(job);
                    set.profiles.push(profile);
                    set.targets.push(target);
                }
                None => lapsed.push(job.id),
            }
        }
        (set, lapsed)
    }

    /// Splits `jobs` into the deadline-ordered *feasible subset* (each job
    /// progressively filled against the ones before it) and the lapsed
    /// remainder. In the idealized model every admitted job stays feasible
    /// (Algorithm 1's invariant), but in a running system scaling pauses
    /// and slot discretization can push an admitted job past the point of
    /// recovery; such lapsed jobs are scheduled best-effort (§4.4, soft
    /// deadlines) and must not veto future admissions.
    pub fn feasible_subset(
        &self,
        jobs: &[PlanningJob],
        grid: &SlotGrid,
    ) -> (Vec<PlanningJob>, Vec<JobId>) {
        let (feasible, lapsed, _) = self.feasible_subset_with_ledger(jobs, grid);
        (feasible, lapsed)
    }

    /// Like [`AdmissionController::feasible_subset`], additionally
    /// returning the reservation ledger of the feasible jobs' committed
    /// profiles (useful to gauge near-term booked load).
    pub fn feasible_subset_with_ledger(
        &self,
        jobs: &[PlanningJob],
        grid: &SlotGrid,
    ) -> (Vec<PlanningJob>, Vec<JobId>, ReservationLedger) {
        let (set, lapsed) = self.fill(jobs, grid);
        let (feasible, _profiles, ledger) = set.into_parts();
        (feasible, lapsed, ledger)
    }

    /// Mean booked fraction of the cluster over the next `horizon_slots`
    /// slots of the given ledger, in `[0, 1]`.
    pub fn booked_fraction(&self, ledger: &ReservationLedger, horizon_slots: usize) -> f64 {
        if horizon_slots == 0 {
            return 0.0;
        }
        // Per-slot commitments are small integers, so summing them in f64
        // is exact — when nothing exceeds the cluster size the clamp is
        // the identity and the cached integer prefix sum gives the same
        // value in O(1) instead of an O(horizon) walk.
        let total = if ledger.peak() <= self.total_gpus {
            ledger.committed_before(horizon_slots) as f64
        } else {
            (0..horizon_slots)
                .map(|t| ledger.committed(t).min(self.total_gpus) as f64)
                .sum()
        };
        total / (horizon_slots as f64 * self.total_gpus as f64)
    }

    /// Convenience wrapper for the arrival path: checks `candidate`
    /// against the feasible subset of `existing` and reports whether the
    /// candidate may enter. Jobs of `existing` that have already lapsed
    /// cannot veto the newcomer (their deadlines are lost either way), but
    /// the newcomer is rejected if it would break any still-feasible job.
    pub fn admit(
        &self,
        existing: &[PlanningJob],
        candidate: &PlanningJob,
        grid: &SlotGrid,
    ) -> bool {
        let (set, _lapsed) = self.fill(existing, grid);
        set.whatif_admit(candidate, grid).is_ok()
    }
}

/// The committed outcome of one Algorithm-1 fill, kept around so the
/// next admission question touches only the suffix it can change.
///
/// Algorithm 1 fills jobs in deadline order, each against the ledger of
/// strictly earlier jobs only. Inserting a candidate at deadline
/// position `k` therefore cannot alter any profile in positions
/// `[0, k)` — that prefix was computed from inputs the candidate does
/// not reach. This is the *incremental admission invariant*: reusing
/// the stored prefix profiles and refilling only `[k, n]` yields, job
/// for job and bit for bit, the plan a from-scratch
/// [`AdmissionController::check`] over the union would produce, and the
/// same first blocking job on rejection.
///
/// # Example
///
/// ```
/// use elasticflow_core::{AdmissionController, PlanningJob, SlotGrid};
/// use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};
/// use elasticflow_trace::JobId;
///
/// let curve = ScalingCurve::from_points(DnnModel::ResNet50, 64, vec![
///     CurvePoint { gpus: 1, iters_per_sec: 1.0 },
///     CurvePoint { gpus: 2, iters_per_sec: 1.5 },
/// ]);
/// let job = |id: u64, work: f64, slots: usize| PlanningJob {
///     id: JobId::new(id),
///     curve: curve.clone(),
///     remaining_iterations: work,
///     deadline_slot: slots,
/// };
/// let ac = AdmissionController::new(2);
/// let grid = SlotGrid::uniform(1.0);
/// let (mut set, lapsed) = ac.fill(&[job(0, 2.0, 2)], &grid);
/// assert!(lapsed.is_empty());
/// // One more 1-GPU job fits; a third does not — and the denial says
/// // who blocked and by how much.
/// assert!(set.admit(job(1, 2.0, 2), &grid).is_ok());
/// let denial = set.whatif_admit(&job(2, 2.0, 2), &grid).unwrap_err();
/// assert_eq!(denial.blocking_job, JobId::new(2));
/// assert!(denial.shortfall.shortfall_gpu_slots() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct AdmissionSet {
    total_gpus: u32,
    /// Feasible jobs in fill order (deadline, then id).
    jobs: Vec<PlanningJob>,
    /// `profiles[i]` is the minimum-satisfactory profile of `jobs[i]`.
    profiles: Vec<AllocationProfile>,
    /// `targets[i]` is the ladder target that produced `profiles[i]` — a
    /// derived acceleration hint for suffix refills (see
    /// [`progressive_filling_from`]), never part of the set's identity.
    targets: Vec<u32>,
    /// Sum of all committed profiles.
    ledger: ReservationLedger,
}

/// What a successful [`AdmissionSet::refill_suffix`] produced.
struct SuffixRefill {
    /// The candidate's fill position.
    k: usize,
    /// The candidate's minimum-satisfactory profile and ladder target.
    cand_profile: AllocationProfile,
    cand_target: u32,
    /// Refilled profiles and targets of the jobs at positions `k..`.
    suffix: Vec<AllocationProfile>,
    suffix_targets: Vec<u32>,
    /// The updated ledger (prefix + candidate + refilled suffix).
    ledger: ReservationLedger,
}

impl AdmissionSet {
    /// The committed reservation ledger of every job in the set.
    pub fn ledger(&self) -> &ReservationLedger {
        &self.ledger
    }

    /// The feasible jobs in fill order.
    pub fn jobs(&self) -> &[PlanningJob] {
        &self.jobs
    }

    /// Number of jobs in the set.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no job is committed.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The committed plan as an id-keyed map (cloned).
    pub fn plan(&self) -> BTreeMap<JobId, AllocationProfile> {
        self.jobs
            .iter()
            .zip(&self.profiles)
            .map(|(job, profile)| (job.id, profile.clone()))
            .collect()
    }

    /// Decomposes the set into jobs (fill order), their profiles, and
    /// the committed ledger.
    pub fn into_parts(self) -> (Vec<PlanningJob>, Vec<AllocationProfile>, ReservationLedger) {
        (self.jobs, self.profiles, self.ledger)
    }

    /// Index at which `candidate` would fill (jobs with an equal key
    /// cannot exist: ids are unique within a set).
    fn insertion_point(&self, candidate: &PlanningJob) -> usize {
        self.jobs
            .partition_point(|j| fill_key(j) < fill_key(candidate))
    }

    /// Refills the suffix at or after `candidate`'s fill position with
    /// the candidate included. On success returns a [`SuffixRefill`]
    /// (insertion index, candidate profile, refilled suffix, updated
    /// ledger); on failure an [`AdmissionDenial`] naming the first job
    /// (in fill order) that cannot be satisfied, with its shortfall. The
    /// set itself is untouched; profiles of a failed refill are recycled
    /// into `scratch`.
    fn refill_suffix(
        &self,
        candidate: &PlanningJob,
        grid: &SlotGrid,
        scratch: &mut FillScratch,
    ) -> Result<SuffixRefill, AdmissionDenial> {
        let k = self.insertion_point(candidate);
        let mut ledger = self.ledger.clone();
        for profile in &self.profiles[k..] {
            ledger.uncommit(profile);
        }
        let (cand_profile, cand_target) =
            match progressive_filling_from(candidate, &ledger, grid, self.total_gpus, 1, scratch) {
                Some(filled) => filled,
                None => {
                    return Err(AdmissionDenial {
                        blocking_job: candidate.id,
                        shortfall: window_shortfall(candidate, &ledger, grid, self.total_gpus),
                    })
                }
            };
        ledger.commit(&cand_profile);
        let mut suffix = Vec::with_capacity(self.profiles.len() - k);
        let mut suffix_targets = Vec::with_capacity(self.profiles.len() - k);
        // Ladder-start soundness: as long as every refilled job has
        // reproduced its stored profile bit for bit, the working ledger
        // each subsequent job fills against equals the ledger its stored
        // target was computed under *plus* the candidate's profile — a
        // pointwise-dominating ledger, under which no rung below the
        // stored target can newly succeed (for ladder-monotone curves;
        // `progressive_filling_from` enforces the curve gate itself).
        // The first job whose profile changes breaks the equality, so
        // every job after it falls back to the full ladder.
        let mut dominated = true;
        for (i, job) in self.jobs[k..].iter().enumerate() {
            let hint = if dominated { self.targets[k + i] } else { 1 };
            match progressive_filling_from(job, &ledger, grid, self.total_gpus, hint, scratch) {
                Some((profile, target)) => {
                    ledger.commit(&profile);
                    if dominated && profile != self.profiles[k + i] {
                        dominated = false;
                    }
                    suffix.push(profile);
                    suffix_targets.push(target);
                }
                None => {
                    let denial = AdmissionDenial {
                        blocking_job: job.id,
                        shortfall: window_shortfall(job, &ledger, grid, self.total_gpus),
                    };
                    scratch.recycle(cand_profile);
                    for profile in suffix {
                        scratch.recycle(profile);
                    }
                    return Err(denial);
                }
            }
        }
        Ok(SuffixRefill {
            k,
            cand_profile,
            cand_target,
            suffix,
            suffix_targets,
            ledger,
        })
    }

    /// Incremental Algorithm 1: would admitting `candidate` keep every
    /// job (existing and new) satisfiable? Refills only the
    /// deadline-ordered suffix from the candidate's position; the prefix
    /// is reused unchanged. `Err` names the first unsatisfiable job —
    /// the same blocking job (and the same shortfall) a from-scratch
    /// check would report. The set is not modified.
    pub fn whatif_admit(
        &self,
        candidate: &PlanningJob,
        grid: &SlotGrid,
    ) -> Result<(), AdmissionDenial> {
        self.refill_suffix(candidate, grid, &mut FillScratch::new())
            .map(|_| ())
    }

    /// The full [`AdmissionOutcome`] (witness plan or blocking job) of
    /// admitting `candidate`, built incrementally. Equals
    /// `AdmissionController::check` over `jobs() + candidate`.
    pub fn admission_outcome(&self, candidate: &PlanningJob, grid: &SlotGrid) -> AdmissionOutcome {
        match self.refill_suffix(candidate, grid, &mut FillScratch::new()) {
            Ok(refill) => {
                let mut plan = BTreeMap::new();
                for (job, profile) in self.jobs[..refill.k].iter().zip(&self.profiles[..refill.k]) {
                    plan.insert(job.id, profile.clone());
                }
                plan.insert(candidate.id, refill.cand_profile);
                for (job, profile) in self.jobs[refill.k..].iter().zip(&refill.suffix) {
                    plan.insert(job.id, profile.clone());
                }
                AdmissionOutcome::Admitted { plan }
            }
            Err(denial) => AdmissionOutcome::Rejected {
                blocking_job: denial.blocking_job,
                shortfall: denial.shortfall,
            },
        }
    }

    /// Commits `candidate` into the set (incremental fill). On failure
    /// the set is unchanged and the denial (blocking job + shortfall)
    /// is returned.
    pub fn admit(
        &mut self,
        candidate: PlanningJob,
        grid: &SlotGrid,
    ) -> Result<(), AdmissionDenial> {
        self.admit_with(candidate, grid, &mut FillScratch::new())
    }

    /// [`AdmissionSet::admit`] with a caller-provided fill scratch, so a
    /// batch of submissions reuses one set of buffers (and one curve
    /// memo) instead of allocating per decision. The scratch carries no
    /// decision state between calls — reuse never changes an outcome.
    pub fn admit_with(
        &mut self,
        candidate: PlanningJob,
        grid: &SlotGrid,
        scratch: &mut FillScratch,
    ) -> Result<(), AdmissionDenial> {
        let refill = self.refill_suffix(&candidate, grid, scratch)?;
        self.jobs.insert(refill.k, candidate);
        for superseded in self.profiles.drain(refill.k..) {
            scratch.recycle(superseded);
        }
        self.profiles.push(refill.cand_profile);
        self.profiles.extend(refill.suffix);
        self.targets.truncate(refill.k);
        self.targets.push(refill.cand_target);
        self.targets.extend(refill.suffix_targets);
        self.ledger = refill.ledger;
        Ok(())
    }

    /// Removes the job `id` and refills the jobs after it against the
    /// freed capacity, exactly as a from-scratch fill over the remaining
    /// jobs would. Returns the ids of any suffix jobs that can no longer
    /// be satisfied (possible outside the idealized model; they are
    /// dropped from the set, mirroring [`AdmissionController::fill`]'s
    /// lapsed handling). A no-op returning an empty list if `id` is not
    /// in the set.
    pub fn withdraw(&mut self, id: JobId, grid: &SlotGrid) -> Vec<JobId> {
        self.withdraw_with(id, grid, &mut FillScratch::new())
    }

    /// [`AdmissionSet::withdraw`] with a caller-provided fill scratch
    /// (see [`AdmissionSet::admit_with`]).
    pub fn withdraw_with(
        &mut self,
        id: JobId,
        grid: &SlotGrid,
        scratch: &mut FillScratch,
    ) -> Vec<JobId> {
        let Some(k) = self.jobs.iter().position(|j| j.id == id) else {
            return Vec::new();
        };
        for profile in &self.profiles[k..] {
            self.ledger.uncommit(profile);
        }
        for superseded in self.profiles.drain(k..) {
            scratch.recycle(superseded);
        }
        self.targets.truncate(k);
        let tail: Vec<PlanningJob> = self.jobs.drain(k..).collect();
        let mut lapsed = Vec::new();
        for job in tail {
            if job.id == id {
                continue;
            }
            // A withdrawal *frees* capacity, so a job's minimum target can
            // shrink — stored targets are no shortcut here; walk the full
            // ladder from rung 1.
            match progressive_filling_from(&job, &self.ledger, grid, self.total_gpus, 1, scratch) {
                Some((profile, target)) => {
                    self.ledger.commit(&profile);
                    self.jobs.push(job);
                    self.profiles.push(profile);
                    self.targets.push(target);
                }
                None => lapsed.push(job.id),
            }
        }
        lapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};

    fn curve() -> ScalingCurve {
        ScalingCurve::from_points(
            DnnModel::ResNet50,
            64,
            vec![
                CurvePoint {
                    gpus: 1,
                    iters_per_sec: 1.0,
                },
                CurvePoint {
                    gpus: 2,
                    iters_per_sec: 1.5,
                },
                CurvePoint {
                    gpus: 4,
                    iters_per_sec: 2.0,
                },
            ],
        )
    }

    fn job(id: u64, work: f64, slots: usize) -> PlanningJob {
        PlanningJob {
            id: JobId::new(id),
            curve: curve(),
            remaining_iterations: work,
            deadline_slot: slots,
        }
    }

    #[test]
    fn empty_set_is_admitted() {
        let ac = AdmissionController::new(4);
        assert!(ac.check(&[], &SlotGrid::uniform(1.0)).is_admitted());
    }

    #[test]
    fn paper_fig3_both_jobs_fit_with_one_gpu_each() {
        // The motivating example (Fig. 3): jobs A and B, 3 units each,
        // deadlines 3 and 3.5 (=> 3 slots each, conservatively), 2 GPUs.
        // One worker each meets both deadlines.
        let ac = AdmissionController::new(2);
        let grid = SlotGrid::uniform(1.0);
        let out = ac.check(&[job(0, 3.0, 3), job(1, 3.0, 3)], &grid);
        match out {
            AdmissionOutcome::Admitted { plan } => {
                assert_eq!(plan[&JobId::new(0)].as_slice(), &[1, 1, 1]);
                assert_eq!(plan[&JobId::new(1)].as_slice(), &[1, 1, 1]);
            }
            AdmissionOutcome::Rejected { .. } => panic!("Fig. 3 set must be admitted"),
        }
    }

    #[test]
    fn rejection_names_the_blocking_job() {
        let ac = AdmissionController::new(1);
        let grid = SlotGrid::uniform(1.0);
        let out = ac.check(&[job(0, 1.0, 1), job(1, 1.0, 1)], &grid);
        match out {
            AdmissionOutcome::Rejected {
                blocking_job,
                shortfall,
            } => {
                assert_eq!(blocking_job, JobId::new(1));
                // Job 0 booked the lone GPU for the whole 1-slot window:
                // job 1 needs 1 GPU-slot (1 unit of work at 1 it/s on 1
                // GPU) and finds 0 free.
                assert_eq!(shortfall.window_slots, 1);
                assert!((shortfall.demand_gpu_slots - 1.0).abs() < 1e-12);
                assert_eq!(shortfall.free_gpu_slots, 0.0);
                assert!((shortfall.shortfall_gpu_slots() - 1.0).abs() < 1e-12);
            }
            AdmissionOutcome::Admitted { .. } => panic!("one GPU cannot carry both jobs"),
        }
    }

    #[test]
    fn shortfall_accounts_for_free_capacity_in_the_window() {
        // 4 GPUs, 2 slots; job 0 books the full cluster in slot 0 only.
        // A newcomer with 50 units of work and a 2-slot window can't
        // finish even at its largest size (g=4 does 2 it/s => 4 units in
        // 2 slots), so demand is charged at full tilt: 50 units / 2 it/s
        // = 25 slots of time × 4 GPUs = 100 GPU-slots. Usable free is
        // slot 1's 4 GPUs (slot 0 is fully booked).
        let ac = AdmissionController::new(4);
        let grid = SlotGrid::uniform(1.0);
        let out = ac.check(&[job(0, 2.0, 1), job(1, 50.0, 2)], &grid);
        match out {
            AdmissionOutcome::Rejected {
                blocking_job,
                shortfall,
            } => {
                assert_eq!(blocking_job, JobId::new(1));
                assert_eq!(shortfall.window_slots, 2);
                assert!((shortfall.demand_gpu_slots - 100.0).abs() < 1e-9);
                assert!((shortfall.free_gpu_slots - 4.0).abs() < 1e-9);
                assert!((shortfall.shortfall_gpu_slots() - 96.0).abs() < 1e-9);
            }
            AdmissionOutcome::Admitted { .. } => panic!("50 units cannot fit in 8 GPU-slots"),
        }
    }

    #[test]
    fn feasible_size_prices_demand_at_the_minimum_satisfactory_share() {
        // Alone on a big cluster with an achievable deadline, the
        // demand side reads MSS × window: 2 units in 2 slots needs g=1
        // (1 it/s × 2 s = 2 units), so demand is 2 GPU-slots.
        let grid = SlotGrid::uniform(1.0);
        let shortfall = window_shortfall(&job(0, 2.0, 2), &ReservationLedger::new(), &grid, 4);
        assert_eq!(shortfall.window_slots, 2);
        assert!((shortfall.demand_gpu_slots - 2.0).abs() < 1e-9);
        // Both slots are empty: 4 usable GPUs × 2 slots.
        assert!((shortfall.free_gpu_slots - 8.0).abs() < 1e-9);
        assert_eq!(shortfall.shortfall_gpu_slots(), 0.0);
    }

    #[test]
    fn later_deadline_job_uses_leftover_slots() {
        let ac = AdmissionController::new(4);
        let grid = SlotGrid::uniform(1.0);
        // Urgent job needs the whole cluster in slot 0; the second job has
        // an extra slot and fits after it.
        let out = ac.check(&[job(0, 2.0, 1), job(1, 2.0, 2)], &grid);
        match out {
            AdmissionOutcome::Admitted { plan } => {
                assert_eq!(plan[&JobId::new(0)].as_slice(), &[4]);
                // Job 1 gets nothing in slot 0, then the cluster in slot 1.
                assert_eq!(plan[&JobId::new(1)].gpus(0), 0);
                assert_eq!(plan[&JobId::new(1)].gpus(1), 4);
            }
            AdmissionOutcome::Rejected { .. } => panic!("should fit"),
        }
    }

    #[test]
    fn admit_wrapper_checks_the_union() {
        let ac = AdmissionController::new(2);
        let grid = SlotGrid::uniform(1.0);
        let existing = [job(0, 2.0, 2)];
        assert!(ac.admit(&existing, &job(1, 1.0, 2), &grid));
        assert!(!ac.admit(&existing, &job(1, 4.0, 2), &grid));
    }

    #[test]
    fn admission_is_monotone_in_deadline() {
        // A job rejected at a tight deadline must be admitted at a looser
        // one (same work, same load).
        let ac = AdmissionController::new(2);
        let grid = SlotGrid::uniform(1.0);
        let existing = [job(0, 3.0, 2)];
        let tight = job(1, 2.5, 2);
        let loose = job(1, 2.5, 4);
        assert!(!ac.admit(&existing, &tight, &grid));
        assert!(ac.admit(&existing, &loose, &grid));
    }

    #[test]
    fn admission_survives_removing_a_neighbor() {
        // Regression: job 0 filling a cluster shared with job 1 got clamped
        // to [2, 2, 4]; alone it filled [4, 4, 4], hogging the final slot
        // it barely needs and starving job 2. The final-slot trim keeps the
        // lone fill frugal ([4, 4, 1]) so the subset stays admitted.
        let mk = |id: u64, pts: [f64; 3], work: f64, slots: usize| PlanningJob {
            id: JobId::new(id),
            curve: ScalingCurve::from_points(
                DnnModel::ResNet50,
                64,
                vec![
                    CurvePoint {
                        gpus: 1,
                        iters_per_sec: pts[0],
                    },
                    CurvePoint {
                        gpus: 2,
                        iters_per_sec: pts[1],
                    },
                    CurvePoint {
                        gpus: 4,
                        iters_per_sec: pts[2],
                    },
                ],
            ),
            remaining_iterations: work,
            deadline_slot: slots,
        };
        let jobs = [
            mk(0, [0.788, 1.034, 1.314], 3.148, 3),
            mk(1, [1.210, 2.196, 3.160], 1.315, 2),
            mk(2, [1.541, 2.400, 3.194], 1.124, 3),
        ];
        let ac = AdmissionController::new(4);
        let grid = SlotGrid::uniform(1.0);
        assert!(ac.check(&jobs, &grid).is_admitted());
        for skip in 0..jobs.len() {
            let subset: Vec<PlanningJob> = jobs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, j)| j.clone())
                .collect();
            assert!(
                ac.check(&subset, &grid).is_admitted(),
                "removing job {skip} broke admission"
            );
        }
    }

    #[test]
    fn incremental_outcome_matches_from_scratch_check() {
        let ac = AdmissionController::new(4);
        let grid = SlotGrid::uniform(1.0);
        let existing = [job(0, 2.0, 1), job(1, 3.0, 3), job(2, 1.0, 2)];
        let (set, lapsed) = ac.fill(&existing, &grid);
        assert!(lapsed.is_empty());
        // Candidates landing before, between, and after the existing
        // deadlines; feasible and infeasible alike.
        for candidate in [
            job(9, 1.0, 1),
            job(9, 2.0, 2),
            job(9, 4.0, 4),
            job(9, 50.0, 3),
        ] {
            let mut union: Vec<PlanningJob> = existing.to_vec();
            union.push(candidate.clone());
            assert_eq!(
                set.admission_outcome(&candidate, &grid),
                ac.check(&union, &grid),
                "candidate deadline {}",
                candidate.deadline_slot
            );
        }
    }

    #[test]
    fn admit_then_withdraw_round_trips() {
        let ac = AdmissionController::new(4);
        let grid = SlotGrid::uniform(1.0);
        let (mut set, _) = ac.fill(&[job(0, 2.0, 2), job(1, 2.0, 3)], &grid);
        let before_plan = set.plan();
        let before_ledger = set.ledger().clone();
        set.admit(job(2, 1.0, 2), &grid).unwrap();
        assert_eq!(set.len(), 3);
        // The mutated set must equal a from-scratch fill of the union...
        let (scratch_set, _) = ac.fill(&[job(0, 2.0, 2), job(1, 2.0, 3), job(2, 1.0, 2)], &grid);
        assert_eq!(set.plan(), scratch_set.plan());
        assert_eq!(set.ledger(), scratch_set.ledger());
        // ...and withdrawing restores the original committed state.
        let lapsed = set.withdraw(JobId::new(2), &grid);
        assert!(lapsed.is_empty());
        assert_eq!(set.plan(), before_plan);
        assert_eq!(set.ledger(), &before_ledger);
    }

    #[test]
    fn failed_admit_leaves_the_set_unchanged() {
        let ac = AdmissionController::new(2);
        let grid = SlotGrid::uniform(1.0);
        let (mut set, _) = ac.fill(&[job(0, 2.0, 2), job(1, 2.0, 2)], &grid);
        let plan = set.plan();
        let denial = set.admit(job(2, 2.0, 2), &grid).unwrap_err();
        assert_eq!(denial.blocking_job, JobId::new(2));
        assert_eq!(set.plan(), plan);
        // A tight candidate with the earliest deadline blocks a *later*
        // job, not itself; the error names that job, like check does.
        let (set2, _) = ac.fill(&[job(5, 1.5, 2)], &grid);
        let bully = job(1, 3.0, 1);
        let mut union = vec![job(5, 1.5, 2), bully.clone()];
        let scratch = ac.check(&union, &grid);
        union.pop();
        assert_eq!(set2.admission_outcome(&bully, &grid), scratch);
    }

    #[test]
    fn theorem1_linear_agreement() {
        // For linear curves, Algorithm 1 must agree with Theorem 1's
        // GPU-time feasibility condition. Linear ladder: T(g) = g.
        let linear = ScalingCurve::from_points(
            DnnModel::Vgg16,
            64,
            vec![
                CurvePoint {
                    gpus: 1,
                    iters_per_sec: 1.0,
                },
                CurvePoint {
                    gpus: 2,
                    iters_per_sec: 2.0,
                },
                CurvePoint {
                    gpus: 4,
                    iters_per_sec: 4.0,
                },
            ],
        );
        let mk = |id: u64, work: f64, slots: usize| PlanningJob {
            id: JobId::new(id),
            curve: linear.clone(),
            remaining_iterations: work,
            deadline_slot: slots,
        };
        let ac = AdmissionController::new(4);
        let grid = SlotGrid::uniform(1.0);
        // Theorem 1: sum of M_j/k_j over deadline-sorted prefixes <= G*D_i.
        // Jobs: (4 work, D=1), (8 work, D=3): prefix1 4 <= 4; prefix2 12 <= 12.
        assert!(ac
            .check(&[mk(0, 4.0, 1), mk(1, 8.0, 3)], &grid)
            .is_admitted());
        // Push past the bound: (4, D=1), (9, D=3): 13 > 12 infeasible.
        assert!(!ac
            .check(&[mk(0, 4.0, 1), mk(1, 9.0, 3)], &grid)
            .is_admitted());
    }
}
