//! Admission control (paper Algorithm 1).

use std::collections::BTreeMap;

use elasticflow_trace::JobId;

use crate::{progressive_filling, AllocationProfile, PlanningJob, ReservationLedger, SlotGrid};

/// Result of an admission check over a set of jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionOutcome {
    /// Every job's deadline can be guaranteed; the witness plan assigns a
    /// minimum-satisfactory profile per job.
    Admitted {
        /// Per-job minimum satisfactory profiles, keyed by job id.
        plan: BTreeMap<JobId, AllocationProfile>,
    },
    /// No feasible plan exists; the named job is the first (in deadline
    /// order) that cannot be satisfied.
    Rejected {
        /// The unsatisfiable job.
        blocking_job: JobId,
    },
}

impl AdmissionOutcome {
    /// `true` for the admitted case.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionOutcome::Admitted { .. })
    }
}

/// ElasticFlow's admission controller: sorts jobs by deadline and
/// progressively fills each against the reservations of the earlier ones
/// (paper Algorithm 1). A new job is admitted iff the whole set — existing
/// admitted jobs plus the newcomer — remains satisfiable.
///
/// # Example
///
/// ```
/// use elasticflow_core::{AdmissionController, PlanningJob, SlotGrid};
/// use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};
/// use elasticflow_trace::JobId;
///
/// let curve = ScalingCurve::from_points(DnnModel::ResNet50, 64, vec![
///     CurvePoint { gpus: 1, iters_per_sec: 1.0 },
///     CurvePoint { gpus: 2, iters_per_sec: 1.5 },
/// ]);
/// let job = |id: u64, work: f64, slots: usize| PlanningJob {
///     id: JobId::new(id),
///     curve: curve.clone(),
///     remaining_iterations: work,
///     deadline_slot: slots,
/// };
/// let ac = AdmissionController::new(2);
/// let grid = SlotGrid::uniform(1.0);
/// // Two 1-GPU jobs with enough slack fit on 2 GPUs…
/// assert!(ac.check(&[job(0, 2.0, 2), job(1, 2.0, 2)], &grid).is_admitted());
/// // …a third does not.
/// let out = ac.check(&[job(0, 2.0, 2), job(1, 2.0, 2), job(2, 2.0, 2)], &grid);
/// assert!(!out.is_admitted());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionController {
    total_gpus: u32,
}

impl AdmissionController {
    /// Creates a controller for a cluster of `total_gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `total_gpus` is zero.
    pub fn new(total_gpus: u32) -> Self {
        assert!(total_gpus > 0, "cluster must have GPUs");
        AdmissionController { total_gpus }
    }

    /// The cluster size this controller plans for.
    pub fn total_gpus(&self) -> u32 {
        self.total_gpus
    }

    /// Checks whether all `jobs` can meet their deadlines together
    /// (Algorithm 1 lines 2–9: sort by deadline, progressively fill each).
    pub fn check(&self, jobs: &[PlanningJob], grid: &SlotGrid) -> AdmissionOutcome {
        let mut order: Vec<&PlanningJob> = jobs.iter().collect();
        order.sort_by(|a, b| a.deadline_slot.cmp(&b.deadline_slot).then(a.id.cmp(&b.id)));
        let mut ledger = ReservationLedger::new();
        let mut plan = BTreeMap::new();
        for job in order {
            match progressive_filling(job, &ledger, grid, self.total_gpus, None) {
                Some(profile) => {
                    ledger.commit(&profile);
                    plan.insert(job.id, profile);
                }
                None => {
                    return AdmissionOutcome::Rejected {
                        blocking_job: job.id,
                    }
                }
            }
        }
        AdmissionOutcome::Admitted { plan }
    }

    /// Splits `jobs` into the deadline-ordered *feasible subset* (each job
    /// progressively filled against the ones before it) and the lapsed
    /// remainder. In the idealized model every admitted job stays feasible
    /// (Algorithm 1's invariant), but in a running system scaling pauses
    /// and slot discretization can push an admitted job past the point of
    /// recovery; such lapsed jobs are scheduled best-effort (§4.4, soft
    /// deadlines) and must not veto future admissions.
    pub fn feasible_subset(
        &self,
        jobs: &[PlanningJob],
        grid: &SlotGrid,
    ) -> (Vec<PlanningJob>, Vec<JobId>) {
        let (feasible, lapsed, _) = self.feasible_subset_with_ledger(jobs, grid);
        (feasible, lapsed)
    }

    /// Like [`AdmissionController::feasible_subset`], additionally
    /// returning the reservation ledger of the feasible jobs' committed
    /// profiles (useful to gauge near-term booked load).
    pub fn feasible_subset_with_ledger(
        &self,
        jobs: &[PlanningJob],
        grid: &SlotGrid,
    ) -> (Vec<PlanningJob>, Vec<JobId>, ReservationLedger) {
        let mut order: Vec<&PlanningJob> = jobs.iter().collect();
        order.sort_by(|a, b| a.deadline_slot.cmp(&b.deadline_slot).then(a.id.cmp(&b.id)));
        let mut ledger = ReservationLedger::new();
        let mut feasible = Vec::new();
        let mut lapsed = Vec::new();
        for job in order {
            match progressive_filling(job, &ledger, grid, self.total_gpus, None) {
                Some(profile) => {
                    ledger.commit(&profile);
                    feasible.push(job.clone());
                }
                None => lapsed.push(job.id),
            }
        }
        (feasible, lapsed, ledger)
    }

    /// Mean booked fraction of the cluster over the next `horizon_slots`
    /// slots of the given ledger, in `[0, 1]`.
    pub fn booked_fraction(&self, ledger: &ReservationLedger, horizon_slots: usize) -> f64 {
        if horizon_slots == 0 {
            return 0.0;
        }
        let total: f64 = (0..horizon_slots)
            .map(|t| ledger.committed(t).min(self.total_gpus) as f64)
            .sum();
        total / (horizon_slots as f64 * self.total_gpus as f64)
    }

    /// Convenience wrapper for the arrival path: checks `candidate`
    /// against the feasible subset of `existing` and reports whether the
    /// candidate may enter. Jobs of `existing` that have already lapsed
    /// cannot veto the newcomer (their deadlines are lost either way), but
    /// the newcomer is rejected if it would break any still-feasible job.
    pub fn admit(
        &self,
        existing: &[PlanningJob],
        candidate: &PlanningJob,
        grid: &SlotGrid,
    ) -> bool {
        let (mut all, _lapsed) = self.feasible_subset(existing, grid);
        all.push(candidate.clone());
        self.check(&all, grid).is_admitted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};

    fn curve() -> ScalingCurve {
        ScalingCurve::from_points(
            DnnModel::ResNet50,
            64,
            vec![
                CurvePoint {
                    gpus: 1,
                    iters_per_sec: 1.0,
                },
                CurvePoint {
                    gpus: 2,
                    iters_per_sec: 1.5,
                },
                CurvePoint {
                    gpus: 4,
                    iters_per_sec: 2.0,
                },
            ],
        )
    }

    fn job(id: u64, work: f64, slots: usize) -> PlanningJob {
        PlanningJob {
            id: JobId::new(id),
            curve: curve(),
            remaining_iterations: work,
            deadline_slot: slots,
        }
    }

    #[test]
    fn empty_set_is_admitted() {
        let ac = AdmissionController::new(4);
        assert!(ac.check(&[], &SlotGrid::uniform(1.0)).is_admitted());
    }

    #[test]
    fn paper_fig3_both_jobs_fit_with_one_gpu_each() {
        // The motivating example (Fig. 3): jobs A and B, 3 units each,
        // deadlines 3 and 3.5 (=> 3 slots each, conservatively), 2 GPUs.
        // One worker each meets both deadlines.
        let ac = AdmissionController::new(2);
        let grid = SlotGrid::uniform(1.0);
        let out = ac.check(&[job(0, 3.0, 3), job(1, 3.0, 3)], &grid);
        match out {
            AdmissionOutcome::Admitted { plan } => {
                assert_eq!(plan[&JobId::new(0)].as_slice(), &[1, 1, 1]);
                assert_eq!(plan[&JobId::new(1)].as_slice(), &[1, 1, 1]);
            }
            AdmissionOutcome::Rejected { .. } => panic!("Fig. 3 set must be admitted"),
        }
    }

    #[test]
    fn rejection_names_the_blocking_job() {
        let ac = AdmissionController::new(1);
        let grid = SlotGrid::uniform(1.0);
        let out = ac.check(&[job(0, 1.0, 1), job(1, 1.0, 1)], &grid);
        assert_eq!(
            out,
            AdmissionOutcome::Rejected {
                blocking_job: JobId::new(1)
            }
        );
    }

    #[test]
    fn later_deadline_job_uses_leftover_slots() {
        let ac = AdmissionController::new(4);
        let grid = SlotGrid::uniform(1.0);
        // Urgent job needs the whole cluster in slot 0; the second job has
        // an extra slot and fits after it.
        let out = ac.check(&[job(0, 2.0, 1), job(1, 2.0, 2)], &grid);
        match out {
            AdmissionOutcome::Admitted { plan } => {
                assert_eq!(plan[&JobId::new(0)].as_slice(), &[4]);
                // Job 1 gets nothing in slot 0, then the cluster in slot 1.
                assert_eq!(plan[&JobId::new(1)].gpus(0), 0);
                assert_eq!(plan[&JobId::new(1)].gpus(1), 4);
            }
            AdmissionOutcome::Rejected { .. } => panic!("should fit"),
        }
    }

    #[test]
    fn admit_wrapper_checks_the_union() {
        let ac = AdmissionController::new(2);
        let grid = SlotGrid::uniform(1.0);
        let existing = [job(0, 2.0, 2)];
        assert!(ac.admit(&existing, &job(1, 1.0, 2), &grid));
        assert!(!ac.admit(&existing, &job(1, 4.0, 2), &grid));
    }

    #[test]
    fn admission_is_monotone_in_deadline() {
        // A job rejected at a tight deadline must be admitted at a looser
        // one (same work, same load).
        let ac = AdmissionController::new(2);
        let grid = SlotGrid::uniform(1.0);
        let existing = [job(0, 3.0, 2)];
        let tight = job(1, 2.5, 2);
        let loose = job(1, 2.5, 4);
        assert!(!ac.admit(&existing, &tight, &grid));
        assert!(ac.admit(&existing, &loose, &grid));
    }

    #[test]
    fn admission_survives_removing_a_neighbor() {
        // Regression: job 0 filling a cluster shared with job 1 got clamped
        // to [2, 2, 4]; alone it filled [4, 4, 4], hogging the final slot
        // it barely needs and starving job 2. The final-slot trim keeps the
        // lone fill frugal ([4, 4, 1]) so the subset stays admitted.
        let mk = |id: u64, pts: [f64; 3], work: f64, slots: usize| PlanningJob {
            id: JobId::new(id),
            curve: ScalingCurve::from_points(
                DnnModel::ResNet50,
                64,
                vec![
                    CurvePoint {
                        gpus: 1,
                        iters_per_sec: pts[0],
                    },
                    CurvePoint {
                        gpus: 2,
                        iters_per_sec: pts[1],
                    },
                    CurvePoint {
                        gpus: 4,
                        iters_per_sec: pts[2],
                    },
                ],
            ),
            remaining_iterations: work,
            deadline_slot: slots,
        };
        let jobs = [
            mk(0, [0.788, 1.034, 1.314], 3.148, 3),
            mk(1, [1.210, 2.196, 3.160], 1.315, 2),
            mk(2, [1.541, 2.400, 3.194], 1.124, 3),
        ];
        let ac = AdmissionController::new(4);
        let grid = SlotGrid::uniform(1.0);
        assert!(ac.check(&jobs, &grid).is_admitted());
        for skip in 0..jobs.len() {
            let subset: Vec<PlanningJob> = jobs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, j)| j.clone())
                .collect();
            assert!(
                ac.check(&subset, &grid).is_admitted(),
                "removing job {skip} broke admission"
            );
        }
    }

    #[test]
    fn theorem1_linear_agreement() {
        // For linear curves, Algorithm 1 must agree with Theorem 1's
        // GPU-time feasibility condition. Linear ladder: T(g) = g.
        let linear = ScalingCurve::from_points(
            DnnModel::Vgg16,
            64,
            vec![
                CurvePoint {
                    gpus: 1,
                    iters_per_sec: 1.0,
                },
                CurvePoint {
                    gpus: 2,
                    iters_per_sec: 2.0,
                },
                CurvePoint {
                    gpus: 4,
                    iters_per_sec: 4.0,
                },
            ],
        );
        let mk = |id: u64, work: f64, slots: usize| PlanningJob {
            id: JobId::new(id),
            curve: linear.clone(),
            remaining_iterations: work,
            deadline_slot: slots,
        };
        let ac = AdmissionController::new(4);
        let grid = SlotGrid::uniform(1.0);
        // Theorem 1: sum of M_j/k_j over deadline-sorted prefixes <= G*D_i.
        // Jobs: (4 work, D=1), (8 work, D=3): prefix1 4 <= 4; prefix2 12 <= 12.
        assert!(ac
            .check(&[mk(0, 4.0, 1), mk(1, 8.0, 3)], &grid)
            .is_admitted());
        // Push past the bound: (4, D=1), (9, D=3): 13 > 12 infeasible.
        assert!(!ac
            .check(&[mk(0, 4.0, 1), mk(1, 9.0, 3)], &grid)
            .is_admitted());
    }
}
