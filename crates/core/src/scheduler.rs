//! The ElasticFlow scheduler: admission control + elastic allocation +
//! best-effort extension, packaged behind the simulator-facing trait.

use elasticflow_sched::{
    clamp_pow2, AdmissionDecision, ClusterView, DeclineReason, JobRuntime, JobTable, RestoreError,
    SchedulePlan, Scheduler, Snapshottable,
};
use elasticflow_trace::JobId;
use serde::{Deserialize, Serialize};

use crate::{AdmissionController, PlanningJob, ResourceAllocator, SlotGrid, WORK_EPSILON};

/// One pending best-effort ladder step in `fill_leftovers`' marginal-fill
/// heap: grow job `idx` to `next` workers for `extra` more GPUs. Ordered
/// by priority, then *lowest* index (the tie the linear scan broke by
/// scanning order); at most one entry per job exists at a time, so the
/// order is total.
struct BestEffortStep {
    prio: f64,
    idx: usize,
    next: u32,
    extra: u32,
}

impl PartialEq for BestEffortStep {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for BestEffortStep {}

impl PartialOrd for BestEffortStep {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BestEffortStep {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.prio
            .total_cmp(&other.prio)
            .then(other.idx.cmp(&self.idx))
    }
}

/// ElasticFlow (paper §4): guarantees the deadline of every admitted SLO
/// job via minimum-satisfactory-share admission control, spends leftover
/// GPUs by marginal return, and schedules best-effort jobs with whatever
/// remains (§4.4).
///
/// # Example
///
/// ```
/// use elasticflow_core::ElasticFlowScheduler;
/// use elasticflow_sched::Scheduler;
///
/// let ef = ElasticFlowScheduler::new();
/// assert_eq!(ef.name(), "elasticflow");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticFlowScheduler {
    planning_slot_seconds: f64,
}

impl ElasticFlowScheduler {
    /// Default planning-slot length: 60 seconds. Fine slots keep the
    /// conservative slot discretization of deadlines negligible even for
    /// sub-hour jobs; the analytic fast path in progressive filling keeps
    /// planning cheap despite the fine grid.
    pub const DEFAULT_PLANNING_SLOT: f64 = 60.0;

    /// Creates the scheduler with the default planning slot.
    pub fn new() -> Self {
        ElasticFlowScheduler {
            planning_slot_seconds: Self::DEFAULT_PLANNING_SLOT,
        }
    }

    /// Overrides the planning-slot length (finer slots = tighter deadline
    /// discretization but more planning work).
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not strictly positive and finite.
    pub fn with_planning_slot(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds > 0.0,
            "planning slot must be positive and finite"
        );
        self.planning_slot_seconds = seconds;
        self
    }

    /// The planning grid at time `now`, anchored to *absolute* multiples
    /// of the slot length: slot 0 is the remainder of the current global
    /// slot. Stable slot boundaries keep reservation profiles comparable
    /// across replans — re-anchoring at `now` would shift every boundary
    /// on every event and jitter jobs' minimum satisfactory shares.
    pub(crate) fn anchored_grid(&self, now: f64) -> SlotGrid {
        let rest = self.planning_slot_seconds;
        let into_slot = now.rem_euclid(rest);
        let first = if into_slot < WORK_EPSILON || rest - into_slot < 1.0 {
            rest
        } else {
            rest - into_slot
        };
        SlotGrid::new(first, rest)
    }

    /// Work-inflation margin applied to every planning view: scheduling
    /// pauses are not visible to the slot model, so plans assume ~5 % more
    /// work than is really left. The margin makes borderline jobs surface
    /// as "lapsed" while recovery (a knee-sized leftover fill) can still
    /// save them, instead of missing their deadlines outright.
    const PLANNING_DERATE: f64 = 1.05;

    /// Converts an active SLO job into its planning view at time `now`.
    pub(crate) fn planning_job(job: &JobRuntime, now: f64, grid: &SlotGrid) -> PlanningJob {
        PlanningJob {
            id: job.id(),
            curve: job.curve.clone(),
            remaining_iterations: job.remaining_iterations * Self::PLANNING_DERATE,
            deadline_slot: grid.slots_before(job.spec.deadline - now),
        }
    }

    /// Like [`Self::planning_job`] but with part of the deadline window
    /// held back as a safety reserve against scaling pauses and slot
    /// re-anchoring jitter. Used only on the admission path: a job admitted
    /// with zero slack would be guaranteed on paper and lost in practice.
    /// `contention` in `[0, 1]` scales the reserve: churn-induced drift
    /// only materializes on a busy cluster, so an idle cluster admits
    /// borderline jobs at face value.
    pub(crate) fn planning_job_with_reserve(
        job: &JobRuntime,
        now: f64,
        grid: &SlotGrid,
        contention: f64,
    ) -> PlanningJob {
        let window = job.spec.deadline - now;
        // Fixed floor: scaling pauses hit even on an idle cluster.
        // Scaled part: eviction risk under churn grows with booked load.
        let scale = (2.0 * contention).clamp(0.0, 1.0);
        let reserve = (60.0 + (0.04 * window).clamp(45.0, 900.0) * scale).min(0.5 * window);
        PlanningJob {
            id: job.id(),
            curve: job.curve.clone(),
            remaining_iterations: job.remaining_iterations * Self::PLANNING_DERATE,
            deadline_slot: grid.slots_before(window - reserve),
        }
    }

    /// Phase 3 of `plan`: hand leftover GPUs to lapsed-SLO and best-effort
    /// jobs — soft deadlines and §4.4. Lapsed jobs go first in EDF order at
    /// up to their knee; best-effort jobs then receive GPUs by marginal
    /// throughput per GPU, weighted toward short jobs (minimizing JCT).
    fn fill_leftovers(
        plan: &mut SchedulePlan,
        free: &mut u32,
        lapsed: &[&JobRuntime],
        best_effort: &[&JobRuntime],
    ) {
        let mut lapsed: Vec<&&JobRuntime> = lapsed.iter().collect();
        lapsed.sort_by(|a, b| {
            a.spec
                .deadline
                .total_cmp(&b.spec.deadline)
                .then(a.id().cmp(&b.id()))
        });
        for job in lapsed {
            if *free == 0 {
                break;
            }
            let give = clamp_pow2(job.knee(), *free);
            if give > 0 {
                plan.assign(job.id(), give);
                *free -= give;
            }
        }
        // Greedy marginal fill across best-effort jobs, driven by a lazy
        // heap. A candidate's priority depends only on its own job's
        // current grant, so entries never go stale; the budget only
        // shrinks, so a popped entry that exceeds it is discarded for
        // good. Pop order — highest priority, lowest index on ties —
        // matches the linear scan this replaces exactly.
        let mut alloc: Vec<(JobId, u32)> = best_effort.iter().map(|j| (j.id(), 0)).collect();
        // `alloc` mirrors `best_effort` index-for-index.
        let candidate = |idx: usize, cur: u32| -> Option<(f64, u32, u32)> {
            let job = best_effort.get(idx)?;
            let next = if cur == 0 { 1 } else { cur * 2 };
            if next > job.knee() {
                return None;
            }
            let extra = next - cur;
            let gain = job.iters_per_sec(next) - job.iters_per_sec(cur);
            if gain <= 0.0 {
                return None;
            }
            // Favor short jobs: gain per GPU per unit of remaining work.
            let prio = gain / extra as f64 / job.remaining_iterations.max(WORK_EPSILON);
            Some((prio, next, extra))
        };
        // Max-heap key: (priority, Reverse(index)) via the tuple encoding
        // (prio bits are totally ordered through total_cmp's wrapper).
        let mut heap: std::collections::BinaryHeap<BestEffortStep> =
            std::collections::BinaryHeap::new();
        for idx in 0..alloc.len() {
            if let Some((prio, next, extra)) = candidate(idx, 0) {
                heap.push(BestEffortStep {
                    prio,
                    idx,
                    next,
                    extra,
                });
            }
        }
        while let Some(step) = heap.pop() {
            if step.extra > *free {
                continue; // can never fit again: the budget only shrinks
            }
            alloc[step.idx].1 = step.next;
            *free -= step.extra;
            if let Some((prio, next, extra)) = candidate(step.idx, step.next) {
                heap.push(BestEffortStep {
                    prio,
                    idx: step.idx,
                    next,
                    extra,
                });
            }
        }
        for (id, gpus) in alloc {
            if gpus > 0 {
                plan.assign(id, gpus);
            }
        }
    }
}

impl Default for ElasticFlowScheduler {
    fn default() -> Self {
        ElasticFlowScheduler::new()
    }
}

/// The shared admission decision used by ElasticFlow and the EDF+AC
/// ablation: progressive-filling feasibility of the newcomer against the
/// feasible subset of existing jobs, with a deadline-window safety reserve
/// scaled by how heavily the near-term schedule is already booked.
pub(crate) fn admission_decision(
    job: &JobRuntime,
    now: f64,
    view: &ClusterView,
    existing: &[PlanningJob],
    grid: &SlotGrid,
) -> AdmissionDecision {
    let ac = AdmissionController::new(view.total_gpus);
    // One fill commits the feasible subset; the candidate is then answered
    // incrementally — only the deadline-ordered suffix at or after its
    // insertion point refills, instead of every job from scratch.
    let (set, _lapsed) = ac.fill(existing, grid);
    // Booked load over the next ~hour decides how much slack to demand.
    let horizon = elasticflow_cluster::num::slots_ceil(3_600.0 / grid.rest_seconds())
        .unwrap_or(1)
        .max(1);
    let contention = ac.booked_fraction(set.ledger(), horizon);
    let candidate = ElasticFlowScheduler::planning_job_with_reserve(job, now, grid, contention);
    match set.whatif_admit(&candidate, grid) {
        Ok(()) => AdmissionDecision::Admit,
        Err(denial) => {
            // Attribute the decline: the fill either failed at the
            // candidate itself (its reserve-shrunk window cannot carry
            // its demand) or at an already-guaranteed job downstream
            // that the candidate would displace.
            let reason = if denial.blocking_job == candidate.id {
                DeclineReason::CandidateInfeasible {
                    shortfall: denial.shortfall,
                }
            } else {
                DeclineReason::WouldDisplace {
                    blocking_job: denial.blocking_job,
                    shortfall: denial.shortfall,
                }
            };
            AdmissionDecision::Drop { reason }
        }
    }
}

impl Scheduler for ElasticFlowScheduler {
    fn name(&self) -> &str {
        "elasticflow"
    }

    fn on_job_arrival(
        &mut self,
        job: &JobRuntime,
        now: f64,
        view: &ClusterView,
        jobs: &JobTable,
    ) -> AdmissionDecision {
        if !job.is_slo() {
            return AdmissionDecision::Admit; // §4.4: best-effort always enters
        }
        let grid = self.anchored_grid(now);
        let existing: Vec<PlanningJob> = jobs
            .active()
            .filter(|j| j.is_slo())
            .map(|j| Self::planning_job(j, now, &grid))
            .collect();
        admission_decision(job, now, view, &existing, &grid)
    }

    fn plan(&mut self, now: f64, view: &ClusterView, jobs: &JobTable) -> SchedulePlan {
        let grid = self.anchored_grid(now);
        let slo: Vec<&JobRuntime> = jobs.active().filter(|j| j.is_slo()).collect();
        let planning: Vec<PlanningJob> = slo
            .iter()
            .map(|j| Self::planning_job(j, now, &grid))
            .collect();
        let incumbents: std::collections::BTreeMap<JobId, u32> = slo
            .iter()
            .filter(|j| j.current_gpus > 0)
            .map(|j| (j.id(), j.current_gpus))
            .collect();
        // Stage 1: minimum satisfactory shares of the feasible SLO set.
        let allocator = ResourceAllocator::new(view.total_gpus);
        let (mut profiles, infeasible, mut ledger) = allocator.minimum_shares(&planning, &grid);
        let mut plan = SchedulePlan::new();
        for (&id, profile) in &profiles {
            if profile.gpus(0) > 0 {
                plan.assign(id, profile.gpus(0));
            }
        }
        let mut free = view.total_gpus - plan.total_gpus();
        // Stage 2 (§4.4): lapsed (soft-deadline) and best-effort jobs are
        // served right after the minimum shares, before surplus boosts.
        // Lapsed hard-deadline jobs and soft-deadline jobs share the
        // leftover queue (paper §4.4: soft deadlines are scheduled after
        // the admitted jobs' minimum satisfactory shares, EDF-ordered).
        let mut lapsed: Vec<&JobRuntime> = slo
            .iter()
            .copied()
            .filter(|j| infeasible.contains(&j.id()))
            .collect();
        lapsed.extend(
            jobs.active()
                .filter(|j| j.spec.kind == elasticflow_trace::JobKind::SoftDeadline),
        );
        let best_effort: Vec<&JobRuntime> = jobs
            .active()
            .filter(|j| j.spec.kind == elasticflow_trace::JobKind::BestEffort)
            .collect();
        Self::fill_leftovers(&mut plan, &mut free, &lapsed, &best_effort);
        // Stage 3: remaining GPUs go to the feasible SLO jobs by marginal
        // return (Algorithm 2's greedy boost phase).
        let granted = allocator.boost(
            &planning,
            &grid,
            &mut profiles,
            &mut ledger,
            free,
            &incumbents,
        );
        free -= granted;
        for (&id, profile) in &profiles {
            if profile.gpus(0) > plan.gpus(id) {
                plan.assign(id, profile.gpus(0));
            }
        }
        // Anti-churn hysteresis: never *shrink* a job while GPUs would sit
        // idle. Shrinking below the planned profile can only make a job
        // finish earlier than planned was assuming, so topping back up to
        // the current size is always guarantee-safe, and it avoids paying a
        // checkpoint/restore pause just to idle the difference.
        for job in jobs.active() {
            if free == 0 {
                break;
            }
            let assigned = plan.gpus(job.id());
            let current = job
                .current_gpus
                .min(job.curve.clamp_useful(view.total_gpus));
            if current > assigned && current - assigned <= free {
                plan.assign(job.id(), current);
                free -= current - assigned;
            }
        }
        // Always-on fast path; the `audit` feature adds the full
        // reservation-soundness check of the guarantee invariants. This
        // check stays at plan time (it needs planner internals — profiles,
        // the reservation ledger — that never leave this function); the
        // *structural* cluster audit runs downstream in the simulator's
        // observer chain (`elasticflow-sim`'s `InvariantAuditor`, a
        // `SimObserver` hooked on every replan).
        debug_assert!(plan.total_gpus() <= view.total_gpus);
        #[cfg(feature = "audit")]
        crate::audit::check_plan(&planning, &profiles, &ledger, &plan, &grid, view.total_gpus);
        plan
    }

    fn snapshot_state(&self) -> Option<String> {
        serde_json::to_string(&self.capture()).ok()
    }

    fn restore_state(&mut self, state: &str) -> Result<(), RestoreError> {
        let parsed: ElasticFlowScheduler = serde_json::from_str(state)
            .map_err(|e| RestoreError::new(format!("elasticflow state did not parse: {e}")))?;
        self.restore(parsed)
    }
}

// ElasticFlow recomputes every plan from the job table, so its persistent
// state is just the planning-slot configuration; the scheduler itself is
// its own checkpoint payload.
impl Snapshottable for ElasticFlowScheduler {
    type State = ElasticFlowScheduler;

    fn capture(&self) -> Self::State {
        self.clone()
    }

    fn restore(&mut self, state: Self::State) -> Result<(), RestoreError> {
        if !(state.planning_slot_seconds.is_finite() && state.planning_slot_seconds > 0.0) {
            return Err(RestoreError::new(
                "planning slot must be positive and finite",
            ));
        }
        *self = state;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_perfmodel::{DnnModel, Interconnect, ScalingCurve};
    use elasticflow_trace::JobSpec;

    fn runtime(id: u64, now_deadline: Option<f64>, iterations: f64) -> JobRuntime {
        let curve = ScalingCurve::build(DnnModel::ResNet50, 128, &Interconnect::paper_testbed());
        let mut b = JobSpec::builder(JobId::new(id), DnnModel::ResNet50, 128)
            .iterations(iterations)
            .submit_time(0.0)
            .trace_shape(4, 3_600.0);
        if let Some(d) = now_deadline {
            b = b.deadline(d);
        }
        let mut rt = JobRuntime::new(b.build(), curve);
        rt.admitted = true;
        rt
    }

    fn work_for(seconds: f64, gpus: u32) -> f64 {
        let curve = ScalingCurve::build(DnnModel::ResNet50, 128, &Interconnect::paper_testbed());
        seconds * curve.iters_per_sec(gpus).unwrap()
    }

    #[test]
    fn hopeless_deadline_is_dropped() {
        let mut ef = ElasticFlowScheduler::new();
        let jobs = JobTable::new();
        // More work than the knee can do before the deadline.
        let job = runtime(1, Some(1_300.0), work_for(40_000.0, 8));
        let d = ef.on_job_arrival(&job, 0.0, &ClusterView::new(16), &jobs);
        // On an empty cluster the fill fails at the candidate itself,
        // and the decline says so with a positive shortfall.
        match d {
            AdmissionDecision::Drop {
                reason: DeclineReason::CandidateInfeasible { shortfall },
            } => {
                assert!(shortfall.shortfall_gpu_slots() > 0.0, "{shortfall:?}");
            }
            other => panic!("expected CandidateInfeasible drop, got {other:?}"),
        }
    }

    #[test]
    fn feasible_job_is_admitted_and_scheduled() {
        let mut ef = ElasticFlowScheduler::new();
        let mut jobs = JobTable::new();
        let job = runtime(1, Some(36_000.0), work_for(3_600.0, 1));
        let d = ef.on_job_arrival(&job, 0.0, &ClusterView::new(16), &jobs);
        assert_eq!(d, AdmissionDecision::Admit);
        jobs.insert(job);
        let plan = ef.plan(0.0, &ClusterView::new(16), &jobs);
        assert!(plan.gpus(JobId::new(1)) >= 1);
    }

    #[test]
    fn best_effort_always_admitted() {
        let mut ef = ElasticFlowScheduler::new();
        let jobs = JobTable::new();
        let job = runtime(1, None, 1.0e9);
        assert_eq!(
            ef.on_job_arrival(&job, 0.0, &ClusterView::new(16), &jobs),
            AdmissionDecision::Admit
        );
    }

    #[test]
    fn leftover_gpus_flow_to_best_effort() {
        let mut ef = ElasticFlowScheduler::new();
        let mut jobs = JobTable::new();
        // An SLO job with a loose deadline (small MSS)…
        jobs.insert(runtime(1, Some(86_400.0), work_for(1_200.0, 1)));
        // …and a best-effort job.
        jobs.insert(runtime(2, None, work_for(20_000.0, 1)));
        let plan = ef.plan(0.0, &ClusterView::new(16), &jobs);
        assert!(plan.gpus(JobId::new(2)) > 0, "{plan:?}");
        assert!(plan.total_gpus() <= 16);
    }

    #[test]
    fn slo_jobs_keep_their_guarantee_under_best_effort_load() {
        let mut ef = ElasticFlowScheduler::new();
        let mut jobs = JobTable::new();
        // SLO job with a tight-ish deadline.
        jobs.insert(runtime(1, Some(2_600.0), work_for(2_400.0, 2)));
        for i in 2..6 {
            jobs.insert(runtime(i, None, 1.0e7));
        }
        let plan = ef.plan(0.0, &ClusterView::new(16), &jobs);
        // The SLO job's MSS (>= 2 GPUs) is reserved before best-effort fill.
        assert!(plan.gpus(JobId::new(1)) >= 2, "{plan:?}");
    }

    #[test]
    fn plan_is_deterministic() {
        let mut ef = ElasticFlowScheduler::new();
        let mut jobs = JobTable::new();
        for i in 0..6 {
            jobs.insert(runtime(
                i,
                Some(10_000.0 + 500.0 * i as f64),
                work_for(3_000.0, 2),
            ));
        }
        let a = ef.plan(0.0, &ClusterView::new(32), &jobs);
        let b = ef.plan(0.0, &ClusterView::new(32), &jobs);
        assert_eq!(a, b);
    }

    #[test]
    fn admission_considers_existing_commitments() {
        let mut ef = ElasticFlowScheduler::new();
        let mut jobs = JobTable::new();
        // Fill the cluster with admitted tight jobs.
        for i in 0..4 {
            jobs.insert(runtime(i, Some(3_700.0), work_for(3_500.0, 4)));
        }
        // A newcomer with the same tightness cannot fit on 16 GPUs.
        let newcomer = runtime(99, Some(3_700.0), work_for(3_500.0, 4));
        let d = ef.on_job_arrival(&newcomer, 0.0, &ClusterView::new(16), &jobs);
        assert!(matches!(d, AdmissionDecision::Drop { .. }), "{d:?}");
    }
}
