//! Guarantee-level invariant audit for the ElasticFlow planner.
//!
//! Compiled only with the default-off `audit` cargo feature. After every
//! replan the planner's outputs are checked against the paper's soundness
//! conditions (§4.1–§4.2): reserved GPU-time never exceeds capacity, every
//! feasible SLO job's reserved profile still completes its remaining work
//! by its deadline, and the emitted plan never hands a guaranteed job
//! fewer slot-0 GPUs than its reserved profile. A violation aborts with a
//! structured diagnostic — a scheduler that breaks its own reservation
//! math must not keep running quietly.
//!
//! The structural cluster-side invariants (capacity conservation,
//! buddy-aligned power-of-two placements) are audited by
//! `elasticflow_sim::audit`, which sees the allocator; this module audits
//! the planning layer, which owns the deadline guarantee.

use std::collections::BTreeMap;

use elasticflow_sched::SchedulePlan;
use elasticflow_trace::JobId;

use crate::{AllocationProfile, PlanningJob, ReservationLedger, SlotGrid};

/// Iteration tolerance: profiles are built with the `WORK_EPSILON`
/// completion slack, so audit with a slightly looser one to avoid false
/// alarms on rounding.
const EPS_ITERS: f64 = 1e-6;

/// Aborts the run with a structured diagnostic on a violated invariant.
#[cold]
fn audit_fail(invariant: &str, detail: &str) -> ! {
    // elasticflow-lint: allow(EF-L001): the auditor's entire purpose is a loud structured abort on a violated guarantee invariant — continuing would let a broken reservation masquerade as a guarantee
    panic!("planner audit failed\n  invariant: {invariant}\n  detail:    {detail}")
}

/// Audits one replan's outputs. Called at the end of
/// [`crate::ElasticFlowScheduler`]'s `plan` when the `audit` feature is on.
pub(crate) fn check_plan(
    planning: &[PlanningJob],
    profiles: &BTreeMap<JobId, AllocationProfile>,
    ledger: &ReservationLedger,
    plan: &SchedulePlan,
    grid: &SlotGrid,
    total_gpus: u32,
) {
    if plan.total_gpus() > total_gpus {
        audit_fail(
            "plan fits the cluster",
            &format!("plan assigns {} GPUs of {total_gpus}", plan.total_gpus()),
        );
    }
    for t in 0..ledger.horizon() {
        if ledger.committed(t) > total_gpus {
            audit_fail(
                "reserved GPUs per slot <= capacity",
                &format!(
                    "slot {t} commits {} GPUs of {total_gpus}",
                    ledger.committed(t)
                ),
            );
        }
    }
    for job in planning {
        let Some(profile) = profiles.get(&job.id) else {
            continue; // infeasible (lapsed) job: served best-effort, no reservation
        };
        for (t, &g) in profile.as_slice().iter().enumerate() {
            if g != 0 && !g.is_power_of_two() {
                audit_fail(
                    "reserved grants are powers of two",
                    &format!("job {} reserves {g} GPUs in slot {t}", job.id),
                );
            }
        }
        if job.deadline_slot != usize::MAX && profile.len() > job.deadline_slot {
            audit_fail(
                "reservations end by the deadline",
                &format!(
                    "job {} reserves {} slots against a {}-slot deadline",
                    job.id,
                    profile.len(),
                    job.deadline_slot
                ),
            );
        }
        let iters: f64 = profile
            .as_slice()
            .iter()
            .enumerate()
            .map(|(t, &g)| job.iters_in_slot(g, grid, t))
            .sum();
        if iters + EPS_ITERS < job.remaining_iterations {
            audit_fail(
                "reserved profiles complete the remaining work by the deadline",
                &format!(
                    "job {} has {:.3} iterations left but its profile {:?} only covers {iters:.3}",
                    job.id,
                    job.remaining_iterations,
                    profile.as_slice()
                ),
            );
        }
        if plan.gpus(job.id) < profile.gpus(0) {
            audit_fail(
                "plans never shrink a job below its reserved share",
                &format!(
                    "job {} reserved {} slot-0 GPUs but the plan grants {}",
                    job.id,
                    profile.gpus(0),
                    plan.gpus(job.id)
                ),
            );
        }
    }
}
