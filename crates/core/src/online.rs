//! The online admission surface: Algorithm 1 against a moving clock.
//!
//! Batch admission ([`AdmissionController::check`]) answers one offline
//! question; a serving gateway instead faces a *stream* of arrivals
//! while time passes underneath the committed plan. [`OnlineAdmission`]
//! keeps an incremental [`AdmissionSet`] anchored at an **origin slot**
//! — the absolute slot index the set's relative slot 0 maps to — and
//! advances that anchor as arrivals land:
//!
//! * each submitted job carries an absolute deadline slot, converted to
//!   a window relative to the current origin;
//! * [`OnlineAdmission::advance_to`] moves the origin forward, credits
//!   every committed job the *virtual progress* its minimum-satisfactory
//!   profile guarantees over the elapsed slots, retires the jobs that
//!   finish, rebases the survivors' deadlines, and refills them
//!   (Algorithm 1 over the survivors, one batch per boundary crossing —
//!   never per arrival, so the steady-state cost of a submission stays
//!   the incremental suffix refill).
//!
//! The whole structure is a pure function of the submission stream: no
//! wall clock, no randomness, no iteration over unordered containers.
//! Replaying the same stream — from the start, or from a snapshot taken
//! via [`OnlineAdmission::parts`] plus the logged suffix — reproduces
//! every decision bit for bit, which is the property the serve daemon's
//! crash-recovery tests pin down.

use elasticflow_trace::JobId;

use crate::{
    AdmissionController, AdmissionDenial, AdmissionSet, FillScratch, PlanningJob, SlotGrid,
    WORK_EPSILON,
};

/// One arrival in an [`OnlineAdmission::submit_batch`] call: the job
/// plus its absolute arrival and deadline slots.
#[derive(Debug, Clone)]
pub struct OnlineArrival {
    /// The job being submitted (its `deadline_slot` field is rebased by
    /// the submit, exactly as in [`OnlineAdmission::submit`]).
    pub job: PlanningJob,
    /// The absolute slot containing the arrival time; the clock is
    /// advanced here before the decision runs.
    pub arrival_slot: u64,
    /// The absolute deadline slot.
    pub deadline_slot: u64,
}

/// What one [`OnlineAdmission::advance_to`] boundary crossing did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdvanceReport {
    /// Jobs whose guaranteed profiles completed their remaining work
    /// within the elapsed slots; they left the set satisfied.
    pub completed: Vec<JobId>,
    /// Jobs whose deadline windows elapsed with work still outstanding.
    /// Unreachable in the idealized model (an admitted profile finishes
    /// by its deadline) but guarded: such jobs are dropped, not replanned.
    pub expired: Vec<JobId>,
    /// Survivors the post-advance refill could no longer satisfy
    /// (possible outside the idealized model); dropped from the set,
    /// mirroring [`AdmissionController::fill`]'s lapsed handling.
    pub lapsed: Vec<JobId>,
}

impl AdvanceReport {
    /// `true` when the crossing changed nothing.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty() && self.expired.is_empty() && self.lapsed.is_empty()
    }
}

/// Incremental admission over a stream of arrivals and a moving clock.
///
/// # Example
///
/// ```
/// use elasticflow_core::{OnlineAdmission, PlanningJob};
/// use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};
/// use elasticflow_trace::JobId;
///
/// let curve = ScalingCurve::from_points(DnnModel::ResNet50, 64, vec![
///     CurvePoint { gpus: 1, iters_per_sec: 1.0 },
/// ]);
/// let mut online = OnlineAdmission::new(1, 60.0);
/// // 60 units of work, deadline at absolute slot 2: one slot of slack.
/// let job = PlanningJob {
///     id: JobId::new(7),
///     curve,
///     remaining_iterations: 60.0,
///     deadline_slot: 2,
/// };
/// assert!(online.submit(job, 2).is_ok());
/// // Crossing into slot 1 credits the profile's progress; the job
/// // finishes within its window by slot 2.
/// let report = online.advance_to(2);
/// assert_eq!(report.completed, vec![JobId::new(7)]);
/// assert!(online.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct OnlineAdmission {
    controller: AdmissionController,
    grid: SlotGrid,
    origin_slot: u64,
    set: AdmissionSet,
}

impl OnlineAdmission {
    /// A fresh online admission state at origin slot 0 over a uniform
    /// grid of `slot_seconds`-long slots.
    ///
    /// # Panics
    ///
    /// Panics if `total_gpus` is zero or `slot_seconds` is not positive
    /// (both are configuration errors, same contract as
    /// [`AdmissionController::new`] and [`SlotGrid::uniform`]).
    pub fn new(total_gpus: u32, slot_seconds: f64) -> Self {
        let controller = AdmissionController::new(total_gpus);
        let grid = SlotGrid::uniform(slot_seconds);
        let (set, _lapsed) = controller.fill(&[], &grid);
        OnlineAdmission {
            controller,
            grid,
            origin_slot: 0,
            set,
        }
    }

    /// Rebuilds the state a snapshot captured: `jobs` carry
    /// *origin-relative* deadline slots and remaining work, exactly as
    /// [`OnlineAdmission::parts`] exposed them. Jobs the refill cannot
    /// satisfy are returned as lapsed (empty for any state this type
    /// produced, since the snapshot's jobs were jointly feasible).
    pub fn from_parts(
        total_gpus: u32,
        slot_seconds: f64,
        origin_slot: u64,
        jobs: &[PlanningJob],
    ) -> (Self, Vec<JobId>) {
        let controller = AdmissionController::new(total_gpus);
        let grid = SlotGrid::uniform(slot_seconds);
        let (set, lapsed) = controller.fill(jobs, &grid);
        (
            OnlineAdmission {
                controller,
                grid,
                origin_slot,
                set,
            },
            lapsed,
        )
    }

    /// The absolute slot the committed plan's slot 0 maps to.
    pub fn origin_slot(&self) -> u64 {
        self.origin_slot
    }

    /// The slot grid the plan is filled over.
    pub fn grid(&self) -> &SlotGrid {
        &self.grid
    }

    /// The cluster size being planned for.
    pub fn total_gpus(&self) -> u32 {
        self.controller.total_gpus()
    }

    /// Number of committed (guaranteed) jobs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when no job is committed.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The absolute slot containing time `seconds` (slot boundaries at
    /// integer multiples of the slot length). Times before 0 and
    /// non-finite times clamp to slot 0.
    pub fn slot_of(&self, seconds: f64) -> u64 {
        elasticflow_cluster::num::slots_floor(seconds / self.grid.rest_seconds()).unwrap_or(0)
            as u64
    }

    /// The committed jobs, in fill order, with origin-relative deadline
    /// slots — together with [`OnlineAdmission::origin_slot`] this is
    /// everything a snapshot needs to rebuild the state via
    /// [`OnlineAdmission::from_parts`].
    pub fn parts(&self) -> (u64, &[PlanningJob]) {
        (self.origin_slot, self.set.jobs())
    }

    /// Mean booked fraction of the cluster over the next `horizon_slots`
    /// slots, in `[0, 1]`.
    pub fn booked_fraction(&self, horizon_slots: usize) -> f64 {
        self.controller
            .booked_fraction(self.set.ledger(), horizon_slots)
    }

    /// Submits `job` (remaining work plus an **absolute** deadline slot,
    /// passed as `deadline_slot_abs`; the job's own `deadline_slot`
    /// field is overwritten with the origin-relative window). Commits it
    /// on success; on failure the state is unchanged and the denial
    /// names the blocking job and its capacity shortfall.
    ///
    /// A deadline at or before the current origin leaves a zero-slot
    /// window, which Algorithm 1 rejects unless the job has (epsilon)
    /// no work left.
    pub fn submit(
        &mut self,
        mut job: PlanningJob,
        deadline_slot_abs: u64,
    ) -> Result<(), AdmissionDenial> {
        let relative = deadline_slot_abs.saturating_sub(self.origin_slot);
        job.deadline_slot = usize::try_from(relative).unwrap_or(usize::MAX);
        self.set.admit(job, &self.grid)
    }

    /// [`OnlineAdmission::submit`] with a caller-provided fill scratch:
    /// the hot-path variant batch submission threads one buffer set
    /// through. Outcomes are identical — the scratch carries no state
    /// between calls.
    pub fn submit_with(
        &mut self,
        mut job: PlanningJob,
        deadline_slot_abs: u64,
        scratch: &mut FillScratch,
    ) -> Result<(), AdmissionDenial> {
        let relative = deadline_slot_abs.saturating_sub(self.origin_slot);
        job.deadline_slot = usize::try_from(relative).unwrap_or(usize::MAX);
        self.set.admit_with(job, &self.grid, scratch)
    }

    /// Submits a batch of arrivals in order, advancing the clock only at
    /// slot crossings (an arrival in the same slot as its predecessor
    /// pays no advance) and reusing one [`FillScratch`] — and through it
    /// one memoized-curve cache — across every decision in the batch.
    ///
    /// Returns the per-job outcomes in submission order plus one
    /// [`AdvanceReport`] accumulating every boundary crossing the batch
    /// performed. The outcomes are bit-identical to calling
    /// [`OnlineAdmission::advance_to`] + [`OnlineAdmission::submit`] per
    /// arrival: batching is an amortization, never a semantic change.
    pub fn submit_batch(
        &mut self,
        arrivals: impl IntoIterator<Item = OnlineArrival>,
    ) -> (Vec<Result<(), AdmissionDenial>>, AdvanceReport) {
        let mut scratch = FillScratch::new();
        let mut outcomes = Vec::new();
        let mut report = AdvanceReport::default();
        for arrival in arrivals {
            let crossing = self.advance_to(arrival.arrival_slot);
            report.completed.extend(crossing.completed);
            report.expired.extend(crossing.expired);
            report.lapsed.extend(crossing.lapsed);
            outcomes.push(self.submit_with(arrival.job, arrival.deadline_slot, &mut scratch));
        }
        (outcomes, report)
    }

    /// Removes the job `id` (caller cancellation), refilling later jobs
    /// into the freed capacity. Returns any jobs the refill could no
    /// longer satisfy. No-op for unknown ids.
    pub fn withdraw(&mut self, id: JobId) -> Vec<JobId> {
        self.set.withdraw(id, &self.grid)
    }

    /// [`OnlineAdmission::withdraw`] with a caller-provided fill scratch
    /// (see [`OnlineAdmission::submit_with`]).
    pub fn withdraw_with(&mut self, id: JobId, scratch: &mut FillScratch) -> Vec<JobId> {
        self.set.withdraw_with(id, &self.grid, scratch)
    }

    /// Advances the origin to absolute `slot` (no-op when `slot` is not
    /// ahead of the origin). Every committed job is credited the work
    /// its guaranteed profile performs over the elapsed slots; finished
    /// jobs retire, survivors are rebased to the new origin and refilled
    /// as one batch.
    pub fn advance_to(&mut self, slot: u64) -> AdvanceReport {
        let mut report = AdvanceReport::default();
        if slot <= self.origin_slot {
            return report;
        }
        let delta = usize::try_from(slot - self.origin_slot).unwrap_or(usize::MAX);
        self.origin_slot = slot;
        if self.set.is_empty() {
            return report;
        }
        // Take the set by value: the credited survivors feed straight
        // into the rebuild, so nothing here needs a clone of the jobs
        // (each would copy its scaling curve) or profiles.
        let empty = self.controller.fill_owned(Vec::new(), &self.grid).0;
        let (jobs, profiles, _ledger) = std::mem::replace(&mut self.set, empty).into_parts();
        let mut survivors = Vec::with_capacity(jobs.len());
        for (mut job, profile) in jobs.into_iter().zip(&profiles) {
            // Work the guaranteed plan performs in the elapsed slots.
            let mut done = 0.0_f64;
            for t in 0..delta.min(profile.len()) {
                let gpus = profile.gpus(t);
                if gpus == 0 {
                    continue;
                }
                if let Some(rate) = job.curve.iters_per_sec(gpus) {
                    done += rate * self.grid.duration(t);
                }
            }
            let remaining = job.remaining_iterations - done;
            if remaining <= WORK_EPSILON {
                report.completed.push(job.id);
            } else if job.deadline_slot <= delta {
                report.expired.push(job.id);
            } else {
                job.remaining_iterations = remaining;
                job.deadline_slot -= delta;
                survivors.push(job);
            }
        }
        let (set, lapsed) = self.controller.fill_owned(survivors, &self.grid);
        self.set = set;
        report.lapsed = lapsed;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};

    fn curve() -> ScalingCurve {
        ScalingCurve::from_points(
            DnnModel::ResNet50,
            64,
            vec![
                CurvePoint {
                    gpus: 1,
                    iters_per_sec: 1.0,
                },
                CurvePoint {
                    gpus: 2,
                    iters_per_sec: 1.5,
                },
                CurvePoint {
                    gpus: 4,
                    iters_per_sec: 2.0,
                },
            ],
        )
    }

    fn job(id: u64, work: f64) -> PlanningJob {
        PlanningJob {
            id: JobId::new(id),
            curve: curve(),
            remaining_iterations: work,
            deadline_slot: 0, // overwritten by submit
        }
    }

    #[test]
    fn slot_of_maps_times_onto_boundaries() {
        let online = OnlineAdmission::new(4, 60.0);
        assert_eq!(online.slot_of(0.0), 0);
        assert_eq!(online.slot_of(59.9), 0);
        assert_eq!(online.slot_of(60.0), 1);
        assert_eq!(online.slot_of(3600.0), 60);
        assert_eq!(online.slot_of(-5.0), 0);
        assert_eq!(online.slot_of(f64::NAN), 0);
    }

    #[test]
    fn submit_converts_absolute_deadlines_to_the_origin() {
        let mut online = OnlineAdmission::new(1, 1.0);
        // 2 units of work, 2 slots of window: feasible on 1 GPU at 1 it/s.
        assert!(online.submit(job(0, 2.0), 2).is_ok());
        // Same shape with a dead window: rejected, state unchanged.
        assert!(online.submit(job(1, 2.0), 0).is_err());
        assert_eq!(online.len(), 1);
        // After advancing one slot the same absolute deadline buys one
        // less slot of window.
        online.advance_to(1);
        let denial = online.submit(job(2, 2.0), 2).unwrap_err();
        assert_eq!(denial.blocking_job, JobId::new(2));
    }

    #[test]
    fn advance_credits_guaranteed_progress_and_retires_jobs() {
        let mut online = OnlineAdmission::new(1, 1.0);
        assert!(online.submit(job(0, 2.0), 2).is_ok());
        assert!(online.submit(job(1, 1.0), 3).is_ok());
        // Crossing to slot 2: job 0's profile ([1, 1]) finishes its 2
        // units; job 1 ran in slot 2's window only if scheduled there.
        let report = online.advance_to(2);
        assert_eq!(report.completed, vec![JobId::new(0)]);
        assert!(report.expired.is_empty());
        assert!(report.lapsed.is_empty());
        // Job 1 survives with its window rebased to 1 remaining slot.
        let (origin, jobs) = online.parts();
        assert_eq!(origin, 2);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].id, JobId::new(1));
        assert_eq!(jobs[0].deadline_slot, 1);
        let report = online.advance_to(3);
        assert_eq!(report.completed, vec![JobId::new(1)]);
        assert!(online.is_empty());
    }

    #[test]
    fn advance_frees_capacity_for_new_arrivals() {
        let mut online = OnlineAdmission::new(1, 1.0);
        assert!(online.submit(job(0, 2.0), 2).is_ok());
        // Cluster is saturated through slot 2; a same-window newcomer
        // bounces…
        assert!(online.submit(job(1, 2.0), 2).is_err());
        // …until the first job finishes and its reservation is released.
        online.advance_to(2);
        assert!(online.submit(job(1, 2.0), 4).is_ok());
    }

    #[test]
    fn online_stream_matches_offline_check_at_each_step() {
        // Every accepted prefix of the stream must be exactly the set an
        // offline Algorithm 1 would admit over the same (rebased) jobs.
        let controller = AdmissionController::new(2);
        let grid = SlotGrid::uniform(1.0);
        let mut online = OnlineAdmission::new(2, 1.0);
        let arrivals = [
            (0u64, 1.0_f64, 3u64),
            (1, 2.0, 2),
            (2, 4.0, 4),
            (3, 1.5, 3),
            (4, 2.0, 5),
        ];
        for (id, work, deadline) in arrivals {
            let _ = online.submit(job(id, work), deadline);
            let (_, committed) = online.parts();
            assert!(
                controller.check(committed, &grid).is_admitted(),
                "committed set must stay jointly feasible after job {id}"
            );
        }
    }

    #[test]
    fn parts_round_trip_through_from_parts_is_exact() {
        let mut online = OnlineAdmission::new(4, 30.0);
        assert!(online.submit(job(0, 3.0), 4).is_ok());
        assert!(online.submit(job(1, 2.0), 6).is_ok());
        online.advance_to(2);
        assert!(online.submit(job(2, 1.0), 5).is_ok());
        let (origin, jobs) = online.parts();
        let (rebuilt, lapsed) = OnlineAdmission::from_parts(4, 30.0, origin, jobs);
        assert!(lapsed.is_empty());
        assert_eq!(rebuilt.origin_slot(), online.origin_slot());
        assert_eq!(rebuilt.parts().1, online.parts().1);
        // And the rebuilt state answers the next question identically.
        let mut a = online.clone();
        let mut b = rebuilt;
        assert_eq!(a.submit(job(3, 2.5), 7), b.submit(job(3, 2.5), 7));
        assert_eq!(a.parts().1, b.parts().1);
    }

    #[test]
    fn submit_batch_matches_one_at_a_time_submission() {
        // Arrivals spanning several slot crossings, with same-slot runs
        // in between: the batch path must advance at exactly the same
        // boundaries and answer identically.
        let arrivals: Vec<OnlineArrival> = (0..40u64)
            .map(|i| OnlineArrival {
                job: job(i, 1.0 + (i % 5) as f64 * 0.7),
                arrival_slot: i / 4,
                deadline_slot: i / 4 + 2 + i % 3,
            })
            .collect();
        let mut batched = OnlineAdmission::new(2, 1.0);
        let mut sequential = OnlineAdmission::new(2, 1.0);
        let (outcomes, batch_report) = batched.submit_batch(arrivals.clone());
        let mut seq_report = AdvanceReport::default();
        for (arrival, batch_outcome) in arrivals.into_iter().zip(outcomes) {
            let crossing = sequential.advance_to(arrival.arrival_slot);
            seq_report.completed.extend(crossing.completed);
            seq_report.expired.extend(crossing.expired);
            seq_report.lapsed.extend(crossing.lapsed);
            let seq_outcome = sequential.submit(arrival.job, arrival.deadline_slot);
            assert_eq!(seq_outcome, batch_outcome);
        }
        assert_eq!(batch_report, seq_report);
        assert_eq!(batched.origin_slot(), sequential.origin_slot());
        assert_eq!(batched.parts().1, sequential.parts().1);
    }

    #[test]
    fn submit_batch_boundaries_do_not_change_outcomes() {
        // The same stream cut into different batch sizes produces the
        // same committed set: batch boundaries are a runtime artifact.
        let arrivals: Vec<OnlineArrival> = (0..30u64)
            .map(|i| OnlineArrival {
                job: job(i, 1.5),
                arrival_slot: i / 3,
                deadline_slot: i / 3 + 3,
            })
            .collect();
        let mut whole = OnlineAdmission::new(2, 1.0);
        let (whole_outcomes, _) = whole.submit_batch(arrivals.clone());
        for chunk in [1usize, 4, 7, 30] {
            let mut chunked = OnlineAdmission::new(2, 1.0);
            let mut outcomes = Vec::new();
            for window in arrivals.chunks(chunk) {
                let (mut o, _) = chunked.submit_batch(window.to_vec());
                outcomes.append(&mut o);
            }
            assert_eq!(outcomes, whole_outcomes, "chunk size {chunk}");
            assert_eq!(chunked.parts().1, whole.parts().1, "chunk size {chunk}");
        }
    }

    #[test]
    fn withdraw_releases_the_reservation() {
        let mut online = OnlineAdmission::new(1, 1.0);
        assert!(online.submit(job(0, 2.0), 2).is_ok());
        assert!(online.submit(job(1, 2.0), 2).is_err());
        assert!(online.withdraw(JobId::new(0)).is_empty());
        assert!(online.submit(job(1, 2.0), 2).is_ok());
    }
}
