//! Elastic resource allocation (paper Algorithm 2).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use elasticflow_trace::JobId;

use crate::filling::{progressive_filling_with, FillScratch};
use crate::{
    AdmissionController, AllocationProfile, PlanningJob, ReservationLedger, SlotGrid, WORK_EPSILON,
};

/// Outcome of a resource-allocation round.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationResult {
    /// Per-job profiles; `gpus(0)` of each is the allocation to apply now.
    pub profiles: BTreeMap<JobId, AllocationProfile>,
    /// Jobs whose deadlines can no longer be guaranteed (e.g. after
    /// accumulated scaling pauses); they receive no profile and must be
    /// handled by a fallback policy.
    pub infeasible: Vec<JobId>,
}

impl AllocationResult {
    /// GPUs the result assigns in slot 0.
    pub fn slot0_gpus(&self) -> u32 {
        self.profiles.values().map(|p| p.gpus(0)).sum()
    }
}

/// The greedy marginal-return allocator: after reserving every job's
/// minimum satisfactory share, leftover GPUs are granted one ladder step at
/// a time to the job whose boost saves the most GPU-time per extra GPU
/// (paper Algorithm 2; optimal for concave curves by Theorem 2).
///
/// # Example
///
/// ```
/// use elasticflow_core::{PlanningJob, ResourceAllocator, SlotGrid};
/// use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};
/// use elasticflow_trace::JobId;
///
/// let curve = ScalingCurve::from_points(DnnModel::ResNet50, 64, vec![
///     CurvePoint { gpus: 1, iters_per_sec: 1.0 },
///     CurvePoint { gpus: 2, iters_per_sec: 1.5 },
/// ]);
/// let job = PlanningJob {
///     id: JobId::new(0),
///     curve,
///     remaining_iterations: 1.0,
///     deadline_slot: 4,
/// };
/// let result = ResourceAllocator::new(4).allocate(&[job], &SlotGrid::uniform(1.0));
/// // MSS is 1 GPU; the idle cluster boosts it to its knee (2 GPUs).
/// assert_eq!(result.profiles[&JobId::new(0)].gpus(0), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceAllocator {
    total_gpus: u32,
}

/// One pending boost in the priority queue.
#[derive(Debug, Clone)]
struct Boost {
    priority: f64,
    id: JobId,
    extra: u32,
    profile: AllocationProfile,
    version: u64,
}

/// Heap entry wrapping a [`Boost`] with its fixed selection key, ordered
/// so `BinaryHeap::pop` yields exactly the entry the reference linear scan
/// ([`ResourceAllocator::boost_reference`]) selects: restorations toward
/// incumbent sizes first, then highest marginal priority, smallest job id
/// as the final tiebreak. The queue holds at most one entry per job id at
/// any time, so the order is total and pops are deterministic.
struct RankedBoost {
    restoring: bool,
    boost: Boost,
}

impl PartialEq for RankedBoost {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for RankedBoost {}

impl PartialOrd for RankedBoost {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankedBoost {
    fn cmp(&self, other: &Self) -> Ordering {
        self.restoring
            .cmp(&other.restoring)
            .then(self.boost.priority.total_cmp(&other.boost.priority))
            .then(other.boost.id.cmp(&self.boost.id))
    }
}

impl ResourceAllocator {
    /// Creates an allocator for a cluster of `total_gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `total_gpus` is zero.
    pub fn new(total_gpus: u32) -> Self {
        assert!(total_gpus > 0, "cluster must have GPUs");
        ResourceAllocator { total_gpus }
    }

    /// Runs Algorithm 2 over the given (deadline-carrying) jobs.
    ///
    /// Phase 1 recomputes every job's minimum satisfactory profile via
    /// Algorithm 1's progressive filling; phase 2 distributes leftover
    /// slot-0 GPUs by marginal return.
    pub fn allocate(&self, jobs: &[PlanningJob], grid: &SlotGrid) -> AllocationResult {
        self.allocate_with_incumbents(jobs, grid, &BTreeMap::new())
    }

    /// Like [`ResourceAllocator::allocate`], but biases the boost order
    /// toward each job's *incumbent* (currently running) worker count:
    /// among pending boosts, restoring a job to a size it already holds is
    /// preferred over growing another job past its incumbent. Restoration
    /// boosts are free at runtime (no checkpoint/restore pause), so this
    /// damping reduces allocation churn without changing what Algorithm 2
    /// can express — ties in marginal return are simply broken in favor of
    /// the status quo.
    pub fn allocate_with_incumbents(
        &self,
        jobs: &[PlanningJob],
        grid: &SlotGrid,
        incumbents: &BTreeMap<JobId, u32>,
    ) -> AllocationResult {
        let (mut profiles, infeasible, mut ledger) = self.minimum_shares(jobs, grid);
        let free0 = self.total_gpus - profiles.values().map(|p| p.gpus(0)).sum::<u32>();
        self.boost(jobs, grid, &mut profiles, &mut ledger, free0, incumbents);
        AllocationResult {
            profiles,
            infeasible,
        }
    }

    /// Phase 1 of Algorithm 2: every job's minimum satisfactory profile
    /// (via Algorithm 1's progressive filling), the ids that no longer fit,
    /// and the reservation ledger of the committed profiles.
    pub fn minimum_shares(
        &self,
        jobs: &[PlanningJob],
        grid: &SlotGrid,
    ) -> (
        BTreeMap<JobId, AllocationProfile>,
        Vec<JobId>,
        ReservationLedger,
    ) {
        // One fill serves both cases: an all-feasible set is exactly the
        // admitted plan of Algorithm 1, and when guarantees have drifted
        // (scaling pauses, discretization) the same pass keeps the
        // satisfiable jobs and surfaces the lapsed rest for fallback —
        // no second from-scratch fill on the rejected path.
        let ac = AdmissionController::new(self.total_gpus);
        let (set, mut infeasible) = ac.fill(jobs, grid);
        let (filled_jobs, filled_profiles, ledger) = set.into_parts();
        let profiles: BTreeMap<JobId, AllocationProfile> = filled_jobs
            .into_iter()
            .map(|j| j.id)
            .zip(filled_profiles)
            .collect();
        infeasible.sort();
        (profiles, infeasible, ledger)
    }

    /// Phase 2 of Algorithm 2: distributes up to `budget` leftover slot-0
    /// GPUs by greedy marginal return, mutating `profiles` and `ledger` in
    /// place. Returns the number of GPUs actually granted.
    ///
    /// Selection runs through a lazy binary heap: entries keep the key
    /// they were pushed with, a popped entry whose version predates the
    /// ledger is recomputed and re-pushed, and a popped entry that no
    /// longer fits the shrinking budget is discarded. Pop order equals the
    /// reference linear scan ([`ResourceAllocator::boost_reference`])
    /// entry for entry, so both produce identical allocations.
    pub fn boost(
        &self,
        jobs: &[PlanningJob],
        grid: &SlotGrid,
        profiles: &mut BTreeMap<JobId, AllocationProfile>,
        ledger: &mut ReservationLedger,
        budget: u32,
        incumbents: &BTreeMap<JobId, u32>,
    ) -> u32 {
        let jobs_by_id: BTreeMap<JobId, &PlanningJob> = jobs.iter().map(|j| (j.id, j)).collect();
        let mut free0 = budget;
        let mut version = 0u64;
        let mut scratch = FillScratch::new();
        let restoring =
            |b: &Boost| b.profile.gpus(0) <= incumbents.get(&b.id).copied().unwrap_or(0);
        let mut queue: BinaryHeap<RankedBoost> = BinaryHeap::new();
        for (&id, profile) in profiles.iter() {
            if let Some(b) = self.candidate(
                jobs_by_id[&id],
                profile,
                ledger,
                grid,
                free0,
                version,
                &mut scratch,
            ) {
                queue.push(RankedBoost {
                    restoring: restoring(&b),
                    boost: b,
                });
            }
        }
        while free0 > 0 {
            let Some(RankedBoost { boost, .. }) = queue.pop() else {
                break;
            };
            let job = jobs_by_id[&boost.id];
            if boost.version < version {
                // Stale: recompute against the current ledger and re-queue.
                let current = &profiles[&boost.id];
                if let Some(fresh) =
                    self.candidate(job, current, ledger, grid, free0, version, &mut scratch)
                {
                    queue.push(RankedBoost {
                        restoring: restoring(&fresh),
                        boost: fresh,
                    });
                }
                continue;
            }
            if boost.extra > free0 {
                continue; // cannot ever fit again: free0 only shrinks
            }
            // Apply the boost: swap profiles in the ledger.
            let old = profiles
                .insert(boost.id, boost.profile.clone())
                // elasticflow-lint: allow(EF-L001): boosts are only ever built from entries of `profiles`, so a previous profile exists; proceeding without it would leave its reservation committed forever
                .expect("boosted job has a profile");
            ledger.uncommit(&old);
            ledger.commit(&boost.profile);
            free0 -= boost.extra;
            version += 1;
            // Queue this job's next step.
            if let Some(next) = self.candidate(
                job,
                &profiles[&boost.id],
                ledger,
                grid,
                free0,
                version,
                &mut scratch,
            ) {
                queue.push(RankedBoost {
                    restoring: restoring(&next),
                    boost: next,
                });
            }
        }
        budget - free0
    }

    /// The retained linear-scan implementation of
    /// [`ResourceAllocator::boost`], kept as the differential-testing
    /// oracle: every pop of the heap-driven version must match the
    /// maximum this scan selects.
    /// Property tests assert the two produce identical profiles, grants,
    /// and ledgers across random job sets; production code calls `boost`.
    pub fn boost_reference(
        &self,
        jobs: &[PlanningJob],
        grid: &SlotGrid,
        profiles: &mut BTreeMap<JobId, AllocationProfile>,
        ledger: &mut ReservationLedger,
        budget: u32,
        incumbents: &BTreeMap<JobId, u32>,
    ) -> u32 {
        let jobs_by_id: BTreeMap<JobId, &PlanningJob> = jobs.iter().map(|j| (j.id, j)).collect();
        let mut free0 = budget;
        let mut version = 0u64;
        let mut scratch = FillScratch::new();
        let mut queue: Vec<Boost> = Vec::new();
        for (&id, profile) in profiles.iter() {
            if let Some(b) = self.candidate(
                jobs_by_id[&id],
                profile,
                ledger,
                grid,
                free0,
                version,
                &mut scratch,
            ) {
                queue.push(b);
            }
        }
        while free0 > 0 && !queue.is_empty() {
            // Pop the best boost: restorations toward incumbent sizes
            // first, then highest marginal return; id as final tiebreak.
            let restoring =
                |b: &Boost| b.profile.gpus(0) <= incumbents.get(&b.id).copied().unwrap_or(0);
            let Some(best_idx) = queue
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    restoring(a)
                        .cmp(&restoring(b))
                        .then(a.priority.total_cmp(&b.priority))
                        .then(b.id.cmp(&a.id))
                })
                .map(|(i, _)| i)
            else {
                break;
            };
            let boost = queue.swap_remove(best_idx);
            let job = jobs_by_id[&boost.id];
            if boost.version < version {
                // Stale: recompute against the current ledger and re-queue.
                let current = &profiles[&boost.id];
                if let Some(fresh) =
                    self.candidate(job, current, ledger, grid, free0, version, &mut scratch)
                {
                    queue.push(fresh);
                }
                continue;
            }
            if boost.extra > free0 {
                continue; // cannot ever fit again: free0 only shrinks
            }
            // Apply the boost: swap profiles in the ledger.
            let old = profiles
                .insert(boost.id, boost.profile.clone())
                // elasticflow-lint: allow(EF-L001): boosts are only ever built from entries of `profiles`, so a previous profile exists; proceeding without it would leave its reservation committed forever
                .expect("boosted job has a profile");
            ledger.uncommit(&old);
            ledger.commit(&boost.profile);
            free0 -= boost.extra;
            version += 1;
            // Queue this job's next step.
            if let Some(next) = self.candidate(
                job,
                &profiles[&boost.id],
                ledger,
                grid,
                free0,
                version,
                &mut scratch,
            ) {
                queue.push(next);
            }
        }
        budget - free0
    }

    /// Computes the next boost candidate for one job: double its slot-0
    /// allocation (or start it at 1) and progressively re-fill the future.
    /// Returns `None` when no further boost helps or fits.
    #[allow(clippy::too_many_arguments)]
    fn candidate(
        &self,
        job: &PlanningJob,
        current: &AllocationProfile,
        ledger: &mut ReservationLedger,
        grid: &SlotGrid,
        free0: u32,
        version: u64,
        scratch: &mut FillScratch,
    ) -> Option<Boost> {
        let cur0 = current.gpus(0);
        let next0 = if cur0 == 0 { 1 } else { cur0 * 2 };
        if next0 > job.curve.clamp_useful(self.total_gpus) {
            return None; // past the knee: constraint (7)
        }
        let extra = next0 - cur0;
        if extra > free0 {
            return None;
        }
        // Evaluate against the ledger without this job's own reservations.
        ledger.uncommit(current);
        let fresh =
            progressive_filling_with(job, ledger, grid, self.total_gpus, Some(next0), scratch);
        ledger.commit(current);
        let fresh = fresh?;
        // Paper line 10/23: enqueue only if the boost finishes the job
        // strictly earlier (fractional finish times within slots).
        let finishes_earlier = match (
            job.finish_seconds(&fresh, grid),
            job.finish_seconds(current, grid),
        ) {
            (Some(a), Some(b)) => a + WORK_EPSILON < b,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let saved = current.gpu_seconds(grid) - fresh.gpu_seconds(grid);
        if !finishes_earlier {
            return None;
        }
        Some(Boost {
            priority: saved / extra as f64,
            id: job.id,
            extra,
            profile: fresh,
            version,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};

    fn curve() -> ScalingCurve {
        ScalingCurve::from_points(
            DnnModel::ResNet50,
            64,
            vec![
                CurvePoint {
                    gpus: 1,
                    iters_per_sec: 1.0,
                },
                CurvePoint {
                    gpus: 2,
                    iters_per_sec: 1.5,
                },
                CurvePoint {
                    gpus: 4,
                    iters_per_sec: 2.0,
                },
            ],
        )
    }

    fn job(id: u64, work: f64, slots: usize) -> PlanningJob {
        PlanningJob {
            id: JobId::new(id),
            curve: curve(),
            remaining_iterations: work,
            deadline_slot: slots,
        }
    }

    #[test]
    fn lone_job_boosted_to_knee() {
        let result = ResourceAllocator::new(8).allocate(&[job(0, 4.0, 8)], &SlotGrid::uniform(1.0));
        assert!(result.infeasible.is_empty());
        // MSS would be 1 GPU over 4 slots; boosting to the knee (4) finishes
        // in 2 slots.
        assert_eq!(result.profiles[&JobId::new(0)].gpus(0), 4);
    }

    #[test]
    fn paper_fig3_alike_jobs_share_rather_than_hog() {
        // Two jobs (3 units each, deadlines 3 slots) on 2 GPUs: one worker
        // each meets both deadlines; EDF-style hogging would miss one.
        let result = ResourceAllocator::new(2)
            .allocate(&[job(0, 3.0, 3), job(1, 3.0, 3)], &SlotGrid::uniform(1.0));
        assert!(result.infeasible.is_empty());
        assert_eq!(result.profiles[&JobId::new(0)].gpus(0), 1);
        assert_eq!(result.profiles[&JobId::new(1)].gpus(0), 1);
    }

    #[test]
    fn leftovers_go_to_highest_marginal_return() {
        // Job 0 has a tight deadline (MSS 2), job 1 a loose one (MSS 1).
        // One leftover GPU on a 4-GPU cluster: boosting job 1 from 1 -> 2
        // costs 1 GPU; boosting job 0 from 2 -> 4 costs 2 and exceeds free.
        let result = ResourceAllocator::new(4)
            .allocate(&[job(0, 1.5, 1), job(1, 2.0, 4)], &SlotGrid::uniform(1.0));
        assert_eq!(result.profiles[&JobId::new(0)].gpus(0), 2);
        assert_eq!(result.profiles[&JobId::new(1)].gpus(0), 2);
    }

    #[test]
    fn no_boost_past_the_knee() {
        let result =
            ResourceAllocator::new(32).allocate(&[job(0, 10.0, 32)], &SlotGrid::uniform(1.0));
        // Knee of the test curve is 4.
        assert_eq!(result.profiles[&JobId::new(0)].gpus(0), 4);
        assert_eq!(result.slot0_gpus(), 4);
    }

    #[test]
    fn infeasible_jobs_are_surfaced_not_lost() {
        // 2 GPUs, three urgent jobs: only two fit.
        let result = ResourceAllocator::new(2).allocate(
            &[job(0, 1.0, 1), job(1, 1.0, 1), job(2, 1.0, 1)],
            &SlotGrid::uniform(1.0),
        );
        assert_eq!(result.profiles.len(), 2);
        assert_eq!(result.infeasible, vec![JobId::new(2)]);
    }

    #[test]
    fn never_over_allocates_slot0() {
        for n in 1..6u64 {
            let jobs: Vec<PlanningJob> = (0..n).map(|i| job(i, 2.0, 3)).collect();
            let result = ResourceAllocator::new(4).allocate(&jobs, &SlotGrid::uniform(1.0));
            assert!(
                result.slot0_gpus() <= 4,
                "n={n}: slot0 {}",
                result.slot0_gpus()
            );
        }
    }

    #[test]
    fn boosts_reduce_total_gpu_time_or_finish() {
        // Whatever the boost sequence, the final plan must use no more
        // GPU-time per job than running it at the knee from scratch, and
        // every job still meets its deadline.
        let grid = SlotGrid::uniform(1.0);
        let jobs = [job(0, 2.0, 4), job(1, 3.0, 4), job(2, 1.0, 2)];
        let result = ResourceAllocator::new(4).allocate(&jobs, &grid);
        assert!(result.infeasible.is_empty());
        for j in &jobs {
            let p = &result.profiles[&j.id];
            // Deadline respected.
            assert!(p.last_active_slot().unwrap() < j.deadline_slot);
            // Work completed.
            let done: f64 = p
                .as_slice()
                .iter()
                .enumerate()
                .map(|(t, &g)| j.iters_in_slot(g, &grid, t))
                .sum();
            assert!(done + 1e-9 >= j.remaining_iterations);
        }
    }
}
