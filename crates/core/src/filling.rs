//! Progressive filling (the inner loop of the paper's Algorithm 1).

use elasticflow_perfmodel::CurveMemo;
use elasticflow_sched::clamp_pow2;

use crate::plan::WORK_EPSILON;
use crate::{AllocationProfile, PlanningJob, ReservationLedger, SlotGrid};

/// Reusable buffers for [`progressive_filling_with`].
///
/// Progressive filling is the planner's innermost loop: every admission
/// check and every Algorithm-2 boost probe builds per-slot candidate
/// vectors and re-derives the job's curve knee. A scratch owns both —
/// the candidate slot vector (cleared, never freed, between targets) and
/// a [`CurveMemo`] rebuilt once per fill — so a replan round allocates
/// O(1) times instead of O(candidates).
///
/// Lifetime rule: a scratch may be reused across any sequence of fills
/// (its contents are dead between calls), but it must not be shared
/// concurrently — each worker thread owns its own. Returned
/// [`AllocationProfile`]s are copied out of the scratch, so they stay
/// valid after the scratch is reused or dropped.
#[derive(Debug, Default)]
pub struct FillScratch {
    gpus: Vec<u32>,
    memo: CurveMemo,
    /// Recycled profile buffers: successful fills pop one instead of
    /// allocating, and callers whose profiles die young (declined
    /// refills, superseded plans) push them back via
    /// [`FillScratch::recycle`]. Contents are dead — only capacity is
    /// reused — so recycling can never change a fill's outcome.
    pool: Vec<Vec<u32>>,
}

/// Recycled buffers beyond this are dropped; enough to cover the deepest
/// suffix refill observed at mega-cluster scale with room to spare.
const POOL_CAP: usize = 256;

impl FillScratch {
    /// A scratch with empty buffers (they grow on first use).
    pub fn new() -> Self {
        FillScratch::default()
    }

    /// Returns a dead profile's buffer to the pool so the next fill can
    /// reuse its allocation.
    pub fn recycle(&mut self, profile: AllocationProfile) {
        if self.pool.len() < POOL_CAP {
            self.pool.push(profile.into_gpus());
        }
    }
}

/// Computes the job's minimum-satisfactory allocation against the current
/// reservations: the smallest power-of-two target `j` such that giving the
/// job `min(j, free(t))` GPUs in every slot up to its deadline completes
/// the remaining iterations in time (paper Algorithm 1, lines 11–22).
///
/// `fixed_slot0` pins the job's slot-0 allocation instead of deriving it
/// from `j` — that is how Algorithm 2 calls `ProgressiveFilling(i, 1)`
/// after hypothetically boosting slot 0.
///
/// Returns the per-slot profile, or `None` when even the maximum useful
/// allocation cannot meet the deadline.
///
/// Unlike the pseudocode's `j = 1..G`, candidates walk the power-of-two
/// ladder: buddy placement restricts worker counts to powers of two
/// (§4.3), and per-slot grants are rounded *down* to powers of two.
///
/// This convenience wrapper allocates a fresh [`FillScratch`] per call;
/// hot paths thread one through [`progressive_filling_with`] instead.
///
/// # Example
///
/// ```
/// use elasticflow_core::{progressive_filling, PlanningJob, ReservationLedger, SlotGrid};
/// use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};
/// use elasticflow_trace::JobId;
///
/// // The paper's Fig. 4 example: throughput 1, 1.5, 2 with 1, 2, 4 GPUs.
/// let curve = ScalingCurve::from_points(DnnModel::ResNet50, 64, vec![
///     CurvePoint { gpus: 1, iters_per_sec: 1.0 },
///     CurvePoint { gpus: 2, iters_per_sec: 1.5 },
///     CurvePoint { gpus: 4, iters_per_sec: 2.0 },
/// ]);
/// let job = PlanningJob {
///     id: JobId::new(0),
///     curve,
///     remaining_iterations: 3.0,
///     deadline_slot: 2,
/// };
/// let grid = SlotGrid::uniform(1.0);
/// // Jobs A and B occupy 3 of the 4 GPUs in slot 0.
/// let mut ledger = ReservationLedger::new();
/// ledger.commit(&elasticflow_core::AllocationProfile::new(vec![3]));
/// let profile = progressive_filling(&job, &ledger, &grid, 4, None).unwrap();
/// // As in the paper: 1 GPU in slot 0, 4 GPUs in slot 1 => 1 + 2 = 3 iters.
/// assert_eq!(profile.as_slice(), &[1, 4]);
/// ```
pub fn progressive_filling(
    job: &PlanningJob,
    ledger: &ReservationLedger,
    grid: &SlotGrid,
    total_gpus: u32,
    fixed_slot0: Option<u32>,
) -> Option<AllocationProfile> {
    progressive_filling_with(
        job,
        ledger,
        grid,
        total_gpus,
        fixed_slot0,
        &mut FillScratch::new(),
    )
}

/// [`progressive_filling`] with caller-owned scratch buffers — identical
/// results, no per-candidate allocation.
pub fn progressive_filling_with(
    job: &PlanningJob,
    ledger: &ReservationLedger,
    grid: &SlotGrid,
    total_gpus: u32,
    fixed_slot0: Option<u32>,
    scratch: &mut FillScratch,
) -> Option<AllocationProfile> {
    ladder_fill(job, ledger, grid, total_gpus, fixed_slot0, 1, scratch).map(|(profile, _)| profile)
}

/// [`progressive_filling_with`] that also reports the target `j` the
/// ladder settled on, and accepts a starting rung.
///
/// `start_target` above 1 skips the ladder's lower rungs. The caller
/// asserts that those rungs are known to fail — the contract under which
/// the result (profile *and* target) is bit-identical to the full ladder.
/// The incremental-admission refill supplies a job's previous target when
/// the ledger it refills against dominates the one that produced it
/// (pointwise at least as full): with a monotone curve, fuller slots can
/// only shrink grants and per-slot progress, so a target that failed
/// before still fails. The hint is ignored — full ladder from rung 1 —
/// whenever the curve is not ladder-monotone, so dips in measured curves
/// can never flip an outcome.
pub fn progressive_filling_from(
    job: &PlanningJob,
    ledger: &ReservationLedger,
    grid: &SlotGrid,
    total_gpus: u32,
    start_target: u32,
    scratch: &mut FillScratch,
) -> Option<(AllocationProfile, u32)> {
    ladder_fill(job, ledger, grid, total_gpus, None, start_target, scratch)
}

fn ladder_fill(
    job: &PlanningJob,
    ledger: &ReservationLedger,
    grid: &SlotGrid,
    total_gpus: u32,
    fixed_slot0: Option<u32>,
    start_target: u32,
    scratch: &mut FillScratch,
) -> Option<(AllocationProfile, u32)> {
    let horizon = job.deadline_slot;
    if horizon == 0 {
        return None;
    }
    scratch.memo.rebuild(&job.curve);
    let max_target = scratch.memo.clamp_useful(total_gpus).max(1);
    // A hint only skips rungs when the monotonicity gate holds (see
    // `progressive_filling_from`); malformed hints fall back to rung 1.
    let mut j = if fixed_slot0.is_none()
        && start_target > 1
        && start_target.is_power_of_two()
        && scratch.memo.ladder_monotone()
    {
        start_target.min(max_target)
    } else {
        1u32
    };
    loop {
        if let Some(profile) = try_target(
            job,
            ledger,
            grid,
            total_gpus,
            j,
            fixed_slot0,
            &scratch.memo,
            &mut scratch.gpus,
            &mut scratch.pool,
        ) {
            return Some((profile, j));
        }
        if j >= max_target {
            return None;
        }
        j *= 2;
    }
}

/// Builds the profile for one candidate target `j`, returning it only when
/// the job finishes by its deadline. The profile is trimmed at the slot
/// where the remaining work reaches zero, so commitments never outlive the
/// job (the early slots run at full `j`; the trim frees the tail for
/// others — the source of the "finish early, admit more later" benefit the
/// paper describes in §4.2).
/// Shrinks the final active slot's grant to the smallest power of two that
/// still completes the remaining work. The pseudocode's constant-`j` fill
/// books `j` GPUs in the finish slot even when only a sliver of work is
/// left, and that stranded tail capacity breaks the downward closure of
/// admission: a job filling an emptier cluster books *more* GPU-time than
/// the same job filling a fuller one (where `free` clamps its grants), so
/// removing a neighbor could flip an admitted set to rejected. Frugality
/// here costs nothing — the job still finishes in the same slot.
fn trim_final_slot(
    job: &PlanningJob,
    grid: &SlotGrid,
    memo: &CurveMemo,
    gpus: &mut [u32],
    fixed_slot0: Option<u32>,
) {
    let Some(last) = gpus.iter().rposition(|&g| g > 0) else {
        return;
    };
    if last == 0 && fixed_slot0.is_some() {
        return; // slot 0 is pinned by Algorithm 2's hypothetical boost
    }
    let done_before: f64 = gpus[..last]
        .iter()
        .enumerate()
        .map(|(t, &g)| memo.iters_per_sec(g) * grid.duration(t))
        .sum();
    let needed = job.remaining_iterations - done_before;
    let mut g = 1u32;
    while g < gpus[last] {
        if memo.iters_per_sec(g) * grid.duration(last) + WORK_EPSILON >= needed {
            gpus[last] = g;
            return;
        }
        g *= 2;
    }
}

/// Copies the scratch slot vector into an [`AllocationProfile`], reusing
/// a pooled buffer when one is available.
fn emit_profile(gpus: &[u32], pool: &mut Vec<Vec<u32>>) -> AllocationProfile {
    let mut buf = pool.pop().unwrap_or_default();
    buf.clear();
    buf.extend_from_slice(gpus);
    AllocationProfile::new(buf)
}

#[allow(clippy::too_many_arguments)]
fn try_target(
    job: &PlanningJob,
    ledger: &ReservationLedger,
    grid: &SlotGrid,
    total_gpus: u32,
    j: u32,
    fixed_slot0: Option<u32>,
    memo: &CurveMemo,
    gpus: &mut Vec<u32>,
    pool: &mut Vec<Vec<u32>>,
) -> Option<AllocationProfile> {
    let horizon = job.deadline_slot;
    // Conservative infeasibility prune: even running every slot at the
    // best throughput reachable under this candidate's cap (a prefix max,
    // so safe for measured curves that dip before the knee), with a whole
    // extra slot of slack on top, the work cannot finish by the deadline
    // — skip the slot walk. The full-slot slack dwarfs both WORK_EPSILON
    // and the float rounding of the bound itself, so the prune can never
    // fire on a target the walk would have accepted. Skipped when slot 0
    // is pinned: a pinned grant may exceed the candidate's own cap.
    if fixed_slot0.is_none() && horizon != usize::MAX {
        let cap = memo.clamp_useful(j.min(total_gpus));
        let best = memo.peak_rate_at_or_below(cap);
        let slack = best * grid.rest_seconds();
        if slack > WORK_EPSILON && slack * (horizon as f64 + 1.0) < job.remaining_iterations {
            return None;
        }
    }
    let committed_horizon = ledger.horizon();
    gpus.clear();
    let mut done = 0.0f64;
    let mut t = 0usize;
    while t < horizon {
        // Fast path: beyond the ledger's committed horizon every slot is
        // fully free, so the number of additional slots needed follows
        // analytically instead of slot-by-slot.
        if t >= committed_horizon.max(1) {
            let x = memo.clamp_useful(j.min(total_gpus));
            let per_slot = memo.iters_per_sec(x) * grid.duration(t);
            if per_slot <= 0.0 {
                return None;
            }
            let need = match elasticflow_cluster::num::slots_ceil(
                (job.remaining_iterations - done - WORK_EPSILON) / per_slot,
            ) {
                // Absurd horizons are unsatisfiable, not worth materializing.
                Some(n) if n <= 10_000_000 => n.max(1),
                _ => return None,
            };
            if horizon != usize::MAX && t + need > horizon {
                return None;
            }
            gpus.extend(std::iter::repeat_n(x, need));
            trim_final_slot(job, grid, memo, gpus, fixed_slot0);
            return Some(emit_profile(gpus, pool));
        }
        if t == 0 {
            let x = match fixed_slot0 {
                Some(x0) => x0,
                None => {
                    let free = ledger.free(0, total_gpus);
                    clamp_pow2(j.min(free), free)
                }
            };
            // Never allocate past the knee (constraint (7)).
            let x = if x == 0 { 0 } else { memo.clamp_useful(x) };
            gpus.push(x);
            done += memo.iters_per_sec(x) * grid.duration(0);
            if done + WORK_EPSILON >= job.remaining_iterations {
                trim_final_slot(job, grid, memo, gpus, fixed_slot0);
                return Some(emit_profile(gpus, pool));
            }
            t = 1;
            continue;
        }
        // The committed value — and with it the grant `x` and the per-slot
        // rate — is constant across `[t, run_end)`, and slot durations are
        // uniform past slot 0, so the whole run is processed with the
        // grant computed once.
        let run_end = ledger.run_end(t).min(horizon).min(committed_horizon.max(1));
        let free = ledger.free(t, total_gpus);
        let x = clamp_pow2(j.min(free), free);
        // Never allocate past the knee (constraint (7)).
        let x = if x == 0 { 0 } else { memo.clamp_useful(x) };
        let per = memo.iters_per_sec(x) * grid.duration(t);
        if per <= 0.0 {
            // A zero-rate run cannot change `done` (adding +0.0 to the
            // non-negative partial sum is the identity) and the completion
            // check was already false when control reached this slot, so
            // the run is emitted wholesale.
            gpus.resize(run_end, x);
            t = run_end;
            continue;
        }
        // Non-zero rate: keep the slot-by-slot accumulation order (f64
        // addition is not associative; the golden digests depend on it),
        // but with `x` and `per` hoisted out of the loop.
        loop {
            gpus.push(x);
            done += per;
            t += 1;
            if done + WORK_EPSILON >= job.remaining_iterations {
                trim_final_slot(job, grid, memo, gpus, fixed_slot0);
                return Some(emit_profile(gpus, pool));
            }
            if t >= run_end {
                break;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_perfmodel::{CurvePoint, DnnModel, ScalingCurve};
    use elasticflow_trace::JobId;

    fn fig4_curve() -> ScalingCurve {
        ScalingCurve::from_points(
            DnnModel::ResNet50,
            64,
            vec![
                CurvePoint {
                    gpus: 1,
                    iters_per_sec: 1.0,
                },
                CurvePoint {
                    gpus: 2,
                    iters_per_sec: 1.5,
                },
                CurvePoint {
                    gpus: 4,
                    iters_per_sec: 2.0,
                },
            ],
        )
    }

    fn job(remaining: f64, deadline_slot: usize) -> PlanningJob {
        PlanningJob {
            id: JobId::new(0),
            curve: fig4_curve(),
            remaining_iterations: remaining,
            deadline_slot,
        }
    }

    #[test]
    fn empty_cluster_uses_minimum_share() {
        // Deadline 1 slot, 1 unit of work, throughput 1 at 1 GPU: j = 1.
        let grid = SlotGrid::uniform(1.0);
        let ledger = ReservationLedger::new();
        let p = progressive_filling(&job(1.0, 1), &ledger, &grid, 4, None).unwrap();
        assert_eq!(p.as_slice(), &[1]);
    }

    #[test]
    fn tighter_deadline_needs_more_gpus() {
        // 1.5 units of work in 1 slot needs 2 GPUs (T(2) = 1.5).
        let grid = SlotGrid::uniform(1.0);
        let ledger = ReservationLedger::new();
        let p = progressive_filling(&job(1.5, 1), &ledger, &grid, 4, None).unwrap();
        assert_eq!(p.as_slice(), &[2]);
    }

    #[test]
    fn paper_fig4_walkthrough() {
        // Jobs A and B hold 3 GPUs in slot 0; job C (M=3, D=2) needs j=4:
        // slot 0 gets min(4, free=1) = 1 GPU, slot 1 gets 4.
        let grid = SlotGrid::uniform(1.0);
        let mut ledger = ReservationLedger::new();
        ledger.commit(&AllocationProfile::new(vec![3]));
        // j = 2 is checked first and fails: T(1) + T(2) = 2.5 < 3.
        let p = progressive_filling(&job(3.0, 2), &ledger, &grid, 4, None).unwrap();
        assert_eq!(p.as_slice(), &[1, 4]);
    }

    #[test]
    fn infeasible_returns_none() {
        // 10 units of work, deadline 1 slot, max throughput 2: impossible.
        let grid = SlotGrid::uniform(1.0);
        let ledger = ReservationLedger::new();
        assert!(progressive_filling(&job(10.0, 1), &ledger, &grid, 4, None).is_none());
    }

    #[test]
    fn zero_deadline_slots_is_infeasible() {
        let grid = SlotGrid::uniform(1.0);
        let ledger = ReservationLedger::new();
        assert!(progressive_filling(&job(0.5, 0), &ledger, &grid, 4, None).is_none());
    }

    #[test]
    fn profile_is_trimmed_after_completion() {
        // 2 units of work with j=1 over a 10-slot horizon: only 2 slots used.
        let grid = SlotGrid::uniform(1.0);
        let ledger = ReservationLedger::new();
        let p = progressive_filling(&job(2.0, 10), &ledger, &grid, 4, None).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.as_slice(), &[1, 1]);
    }

    #[test]
    fn fixed_slot0_is_respected() {
        let grid = SlotGrid::uniform(1.0);
        let ledger = ReservationLedger::new();
        let p = progressive_filling(&job(3.5, 2), &ledger, &grid, 4, Some(4)).unwrap();
        assert_eq!(p.gpus(0), 4);
        // Slot 0 completes 2 units; remaining 1.5 needs 2 GPUs in slot 1.
        assert_eq!(p.gpus(1), 2);
    }

    #[test]
    fn per_slot_grants_are_powers_of_two() {
        let grid = SlotGrid::uniform(1.0);
        let mut ledger = ReservationLedger::new();
        // 1 GPU committed leaves 3 free; grants must round down to 2.
        ledger.commit(&AllocationProfile::new(vec![1, 1, 1, 1]));
        let p = progressive_filling(&job(4.0, 4), &ledger, &grid, 4, None).unwrap();
        for &g in p.as_slice() {
            assert!(g == 0 || g.is_power_of_two());
            assert!(g <= 2);
        }
    }

    #[test]
    fn respects_committed_capacity() {
        let grid = SlotGrid::uniform(1.0);
        let mut ledger = ReservationLedger::new();
        ledger.commit(&AllocationProfile::new(vec![4, 4]));
        // Cluster fully booked for 2 slots: a 2-slot-deadline job can't fit.
        assert!(progressive_filling(&job(1.0, 2), &ledger, &grid, 4, None).is_none());
        // But a 3-slot deadline leaves slot 2 free.
        let p = progressive_filling(&job(1.0, 3), &ledger, &grid, 4, None).unwrap();
        assert_eq!(p.as_slice(), &[0, 0, 1]);
    }

    #[test]
    fn scratch_reuse_is_stateless_between_fills() {
        let grid = SlotGrid::uniform(1.0);
        let mut scratch = FillScratch::new();
        let mut ledger = ReservationLedger::new();
        ledger.commit(&AllocationProfile::new(vec![3]));
        let a =
            progressive_filling_with(&job(3.0, 2), &ledger, &grid, 4, None, &mut scratch).unwrap();
        assert_eq!(a.as_slice(), &[1, 4]);
        // A second, different fill through the same scratch must match the
        // fresh-scratch result exactly.
        let empty = ReservationLedger::new();
        let b =
            progressive_filling_with(&job(1.5, 1), &empty, &grid, 4, None, &mut scratch).unwrap();
        assert_eq!(b.as_slice(), &[2]);
        // And the first profile is an independent copy, not a view.
        assert_eq!(a.as_slice(), &[1, 4]);
    }

    #[test]
    fn prune_agrees_with_slot_walk_on_infeasible_targets() {
        // Work far beyond the horizon's capacity: both the pruned and the
        // walked path must reject, and feasible cases must be unaffected.
        let grid = SlotGrid::uniform(1.0);
        let ledger = ReservationLedger::new();
        assert!(progressive_filling(&job(1000.0, 3), &ledger, &grid, 4, None).is_none());
        // Just-feasible boundary: 2 slots at T(4)=2 completes 4.0 exactly.
        let p = progressive_filling(&job(4.0, 2), &ledger, &grid, 4, None).unwrap();
        assert_eq!(p.as_slice(), &[4, 4]);
    }
}
