//! Deterministic open-loop arrival streams for the gateway.
//!
//! The same generator discipline as the mega-cluster bench workload:
//! one [`Rng`] stream, a fixed draw order per job (inter-arrival,
//! model, duration, kind, deadline slack), so the stream is a pure
//! function of its [`LoadgenConfig`] — two invocations produce
//! byte-identical request lines, which is what lets the CI smoke replay
//! "the same" load against a fresh and a crash-recovered daemon and
//! diff the journals.
//!
//! Iteration budgets come from each model's knee throughput on the
//! configured cluster, so a duration draw of `d` seconds means "a job
//! that takes ≈`d` seconds at its sweet-spot share" — deadlines drawn
//! at 1.2–4× the duration then put the stream in the regime where
//! admission control actually has to say no sometimes.

use elasticflow_cluster::ClusterSpec;
use elasticflow_perfmodel::{DnnModel, Interconnect, ScalingCurve};
use elasticflow_trace::Rng;

use crate::proto::{JobSubmission, Request};

/// Parameters of one generated request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenConfig {
    /// Number of submissions to generate.
    pub arrivals: usize,
    /// Servers of the target cluster (sizes iteration budgets).
    pub servers: u32,
    /// GPUs per server of the target cluster.
    pub gpus_per_server: u32,
    /// Mean seconds between arrivals (exponential draws).
    pub mean_interarrival: f64,
    /// Fraction of submissions carrying no deadline.
    pub best_effort_fraction: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    /// The paper's large testbed (16 servers × 8 GPUs) under a load
    /// that saturates admission: ~2 s between arrivals, 10%
    /// best-effort.
    fn default() -> Self {
        LoadgenConfig {
            arrivals: 1_000,
            servers: 16,
            gpus_per_server: 8,
            mean_interarrival: 2.0,
            best_effort_fraction: 0.1,
            seed: 0x5345_5256, // "SERV"
        }
    }
}

impl LoadgenConfig {
    /// Total GPUs in the target cluster.
    pub fn total_gpus(&self) -> u32 {
        self.servers * self.gpus_per_server
    }
}

/// The model mix of the stream (model, global batch), matching the
/// bench workloads.
const MODELS: [(DnnModel, u32); 4] = [
    (DnnModel::ResNet50, 256),
    (DnnModel::Vgg16, 128),
    (DnnModel::Bert, 128),
    (DnnModel::Gpt2, 256),
];

/// Generates the deterministic request stream for `cfg`, in arrival
/// order.
pub fn loadgen_stream(cfg: &LoadgenConfig) -> Vec<Request> {
    let spec = ClusterSpec::with_servers(cfg.servers, cfg.gpus_per_server);
    let net = Interconnect::from_spec(&spec);
    let knee_throughputs: Vec<f64> = MODELS
        .iter()
        .map(|&(model, gbs)| {
            let curve = ScalingCurve::build_with_max(model, gbs, &net, cfg.total_gpus());
            curve
                .iters_per_sec(curve.knee())
                .unwrap_or(1.0)
                .max(f64::MIN_POSITIVE)
        })
        .collect();

    let mut rng = Rng::new(cfg.seed);
    let mut now = 0.0_f64;
    let mut requests = Vec::with_capacity(cfg.arrivals);
    for i in 0..cfg.arrivals {
        now += rng.exponential(cfg.mean_interarrival);
        let m = rng.uniform_usize(MODELS.len());
        let (model, global_batch) = MODELS[m];
        let duration = rng.log_normal(600.0, 0.8).clamp(120.0, 7_200.0);
        let best_effort = rng.weighted_choice(&[
            (1.0 - cfg.best_effort_fraction).max(0.0),
            cfg.best_effort_fraction.clamp(0.0, 1.0),
        ]) == 1;
        let slack = rng.uniform_range(1.2, 4.0);
        let deadline_seconds = if best_effort {
            None
        } else {
            Some(now + duration * slack)
        };
        requests.push(Request::Submit {
            job: JobSubmission {
                id: i as u64,
                model,
                global_batch,
                iterations: knee_throughputs[m] * duration,
                arrival_seconds: now,
                deadline_seconds,
            },
        });
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_time_ordered() {
        let cfg = LoadgenConfig {
            arrivals: 500,
            ..LoadgenConfig::default()
        };
        let a = loadgen_stream(&cfg);
        let b = loadgen_stream(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        let arrivals: Vec<f64> = a
            .iter()
            .map(|r| match r {
                Request::Submit { job } => job.arrival_seconds,
                other => panic!("loadgen emits submits only, got {other:?}"),
            })
            .collect();
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn best_effort_fraction_is_respected() {
        let cfg = LoadgenConfig {
            arrivals: 2_000,
            best_effort_fraction: 0.25,
            ..LoadgenConfig::default()
        };
        let stream = loadgen_stream(&cfg);
        let best_effort = stream
            .iter()
            .filter(|r| matches!(r, Request::Submit { job } if job.deadline_seconds.is_none()))
            .count();
        let fraction = best_effort as f64 / stream.len() as f64;
        assert!(
            (fraction - 0.25).abs() < 0.05,
            "best-effort fraction drifted to {fraction}"
        );
    }

    #[test]
    fn deadlines_leave_positive_slack() {
        let stream = loadgen_stream(&LoadgenConfig::default());
        for request in &stream {
            let Request::Submit { job } = request else {
                continue;
            };
            if let Some(deadline) = job.deadline_seconds {
                assert!(deadline > job.arrival_seconds);
            }
            assert!(job.iterations > 0.0);
        }
    }
}
