//! The JSONL wire protocol of the gateway.
//!
//! Clients speak newline-delimited JSON: one [`Request`] per line in,
//! one [`Response`] per line out, in order. The same format flows over
//! every front-end (stdin pipe, TCP socket, Unix socket) and is also
//! what the gateway WAL stores — a request line *is* the durable record
//! of the submission, so replaying the log replays the session.
//!
//! Requests use serde's externally-tagged enum encoding:
//!
//! ```json
//! {"Submit":{"job":{"id":7,"model":"Bert","global_batch":128,
//!   "iterations":50000.0,"arrival_seconds":12.5,"deadline_seconds":7200.0}}}
//! {"Withdraw":{"job":7,"at_seconds":90.0}}
//! {"Stats":{}}
//! ```

use elasticflow_perfmodel::DnnModel;
use elasticflow_sched::DecisionRecord;
use serde::{Deserialize, Serialize};

use crate::gateway::GatewayStats;

/// Wire protocol version; bumped on incompatible changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// One job submission: the serverless interface of the paper's §3.1 —
/// model, hyper-parameters, termination condition, and deadline. No GPU
/// count: the platform decides shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSubmission {
    /// Client-chosen unique job id. Resubmitting an id is rejected
    /// (which is what makes log replay idempotent).
    pub id: u64,
    /// The DNN model to train.
    pub model: DnnModel,
    /// Global batch size.
    pub global_batch: u32,
    /// Termination condition: iterations to run.
    pub iterations: f64,
    /// Arrival time in seconds on the submission clock (monotone
    /// non-decreasing across a session).
    pub arrival_seconds: f64,
    /// Absolute deadline in seconds on the same clock; `None` submits
    /// the job best-effort.
    #[serde(default)]
    pub deadline_seconds: Option<f64>,
}

/// One client request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job for an online admit/decline decision.
    Submit {
        /// The job being submitted.
        job: JobSubmission,
    },
    /// Withdraw a previously admitted job, releasing its reservation.
    Withdraw {
        /// Raw id of the job to withdraw.
        job: u64,
        /// Time of the withdrawal on the submission clock.
        at_seconds: f64,
    },
    /// Report gateway statistics.
    Stats {},
    /// Stop serving after responding (daemon front-ends exit their
    /// read loop; state is already durable, no snapshot required).
    Shutdown {},
}

/// One gateway response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The admit/decline answer to a [`Request::Submit`].
    Decision {
        /// Raw id of the submitted job.
        job: u64,
        /// 1-based sequence number of the submission in this gateway's
        /// history (equals the WAL record count after the append).
        seq: u64,
        /// Convenience flag: `true` for an admit.
        admitted: bool,
        /// The full decision record, as journaled.
        decision: DecisionRecord,
    },
    /// Acknowledgement of a [`Request::Withdraw`].
    Withdrawn {
        /// Raw id of the withdrawn job.
        job: u64,
        /// Raw ids of jobs the post-withdrawal refill could no longer
        /// satisfy (empty in the idealized model).
        lapsed: Vec<u64>,
    },
    /// Statistics snapshot.
    Stats {
        /// Cumulative gateway counters.
        stats: GatewayStats,
        /// Jobs currently holding a deadline guarantee.
        active_guaranteed: u64,
    },
    /// The request could not be served; the connection stays usable.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Acknowledgement of a [`Request::Shutdown`].
    Bye {},
}

/// Parses one request line. Blank lines yield `Ok(None)`.
///
/// Canonical submission lines — the exact bytes [`render_request_into`]
/// (and therefore `elasticflow-loadgen` and the WAL) produce — take a
/// zero-allocation fast path: the fields are parsed from borrowed
/// slices of the line, no [`serde_json::Value`] tree is built. Anything
/// else (reordered fields, whitespace, unknown keys) falls back to the
/// general serde parser, so the accepted language is unchanged.
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    if let Some(request) = parse_submit_fast(trimmed) {
        return Ok(Some(request));
    }
    serde_json::from_str::<Request>(trimmed)
        .map(Some)
        .map_err(|e| format!("bad request line: {e}"))
}

/// Fast path for the canonical `{"Submit":{"job":{...}}}` shape with
/// fields in declaration order and no interior whitespace. Returns
/// `None` (→ serde fallback) on any deviation, so it can only ever
/// accept lines the general parser accepts, with identical results:
/// numbers are parsed with the same `str::parse` the serde shim uses.
fn parse_submit_fast(line: &str) -> Option<Request> {
    let mut cur = Cursor(line.as_bytes());
    cur.expect(b"{\"Submit\":{\"job\":{\"id\":")?;
    let id = cur.take_u64()?;
    cur.expect(b",\"model\":\"")?;
    let model = cur.take_model()?;
    cur.expect(b"\",\"global_batch\":")?;
    let global_batch = cur.take_u32()?;
    cur.expect(b",\"iterations\":")?;
    let iterations = cur.take_f64()?;
    cur.expect(b",\"arrival_seconds\":")?;
    let arrival_seconds = cur.take_f64()?;
    cur.expect(b",\"deadline_seconds\":")?;
    let deadline_seconds = if cur.expect(b"null").is_some() {
        None
    } else {
        Some(cur.take_f64()?)
    };
    cur.expect(b"}}}")?;
    cur.at_end().then_some(Request::Submit {
        job: JobSubmission {
            id,
            model,
            global_batch,
            iterations,
            arrival_seconds,
            deadline_seconds,
        },
    })
}

/// A borrowing byte cursor for [`parse_submit_fast`]: every `take_*`
/// either consumes a well-formed token or returns `None` without any
/// allocation.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn expect(&mut self, literal: &[u8]) -> Option<()> {
        let rest = self.0.strip_prefix(literal)?;
        self.0 = rest;
        Some(())
    }

    fn at_end(&self) -> bool {
        self.0.is_empty()
    }

    fn take_digits(&mut self) -> Option<&'a str> {
        let end = self
            .0
            .iter()
            .position(|b| !b.is_ascii_digit())
            .unwrap_or(self.0.len());
        if end == 0 {
            return None;
        }
        let (digits, rest) = self.0.split_at(end);
        self.0 = rest;
        // Digits are ASCII by construction.
        std::str::from_utf8(digits).ok()
    }

    fn take_u64(&mut self) -> Option<u64> {
        self.take_digits()?.parse().ok()
    }

    fn take_u32(&mut self) -> Option<u32> {
        self.take_digits()?.parse().ok()
    }

    /// Consumes one JSON number token (`-?digits[.digits][e[±]digits]`)
    /// and parses it with `str::parse::<f64>` — the exact routine the
    /// serde shim's parser uses, so the fast path rounds identically.
    fn take_f64(&mut self) -> Option<f64> {
        let bytes = self.0;
        let mut i = 0;
        if bytes.first() == Some(&b'-') {
            i += 1;
        }
        let int_start = i;
        while bytes.get(i).is_some_and(u8::is_ascii_digit) {
            i += 1;
        }
        if i == int_start {
            return None;
        }
        if bytes.get(i) == Some(&b'.') {
            i += 1;
            let frac_start = i;
            while bytes.get(i).is_some_and(u8::is_ascii_digit) {
                i += 1;
            }
            if i == frac_start {
                return None;
            }
        }
        if matches!(bytes.get(i), Some(b'e' | b'E')) {
            i += 1;
            if matches!(bytes.get(i), Some(b'+' | b'-')) {
                i += 1;
            }
            let exp_start = i;
            while bytes.get(i).is_some_and(u8::is_ascii_digit) {
                i += 1;
            }
            if i == exp_start {
                return None;
            }
        }
        let (token, rest) = bytes.split_at(i);
        self.0 = rest;
        std::str::from_utf8(token).ok()?.parse().ok()
    }

    fn take_model(&mut self) -> Option<DnnModel> {
        DnnModel::ALL
            .into_iter()
            .find(|&model| self.expect(model_name(model).as_bytes()).is_some())
    }
}

/// The serde variant name of a model — the string form used on the wire.
fn model_name(model: DnnModel) -> &'static str {
    match model {
        DnnModel::ResNet50 => "ResNet50",
        DnnModel::Vgg16 => "Vgg16",
        DnnModel::InceptionV3 => "InceptionV3",
        DnnModel::Bert => "Bert",
        DnnModel::Gpt2 => "Gpt2",
        DnnModel::DeepSpeech2 => "DeepSpeech2",
    }
}

/// Appends a finite float exactly as the serde shim renders it (`{:?}`,
/// the shortest round-trip form) — `null` for non-finite values, like
/// real `serde_json`.
pub(crate) fn push_f64(out: &mut String, x: f64) {
    use std::fmt::Write;
    if x.is_finite() {
        let _ = write!(out, "{x:?}");
    } else {
        out.push_str("null");
    }
}

/// Renders one request into `out` (appending; no trailing newline),
/// producing byte-for-byte the line `serde_json::to_string` would —
/// without building a `Value` tree or allocating. This is what the WAL
/// append and the load generator use on their hot paths; the equality
/// is pinned by tests over every request shape.
pub fn render_request_into(request: &Request, out: &mut String) {
    use std::fmt::Write;
    match request {
        Request::Submit { job } => render_submit_into(job, out),
        Request::Withdraw { job, at_seconds } => {
            let _ = write!(out, "{{\"Withdraw\":{{\"job\":{job},\"at_seconds\":");
            push_f64(out, *at_seconds);
            out.push_str("}}");
        }
        Request::Stats {} => out.push_str("{\"Stats\":{}}"),
        Request::Shutdown {} => out.push_str("{\"Shutdown\":{}}"),
    }
}

/// Renders the canonical `Submit` line for `job` into `out` — the WAL
/// record format, byte-identical to serde's.
pub fn render_submit_into(job: &JobSubmission, out: &mut String) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"Submit\":{{\"job\":{{\"id\":{},\"model\":\"{}\",\"global_batch\":{},\"iterations\":",
        job.id,
        model_name(job.model),
        job.global_batch,
    );
    push_f64(out, job.iterations);
    out.push_str(",\"arrival_seconds\":");
    push_f64(out, job.arrival_seconds);
    out.push_str(",\"deadline_seconds\":");
    match job.deadline_seconds {
        Some(d) => push_f64(out, d),
        None => out.push_str("null"),
    }
    out.push_str("}}}");
}

/// Serializes a response as one JSONL line (no trailing newline).
pub fn render_response(response: &Response) -> String {
    serde_json::to_string(response).unwrap_or_else(|e| {
        format!("{{\"Error\":{{\"message\":\"response serialization failed: {e}\"}}}}")
    })
}

/// A line reader over one reused buffer: the ingestion half of the
/// zero-allocation hot path. Lines are yielded as borrowed slices of
/// the internal buffer — steady-state reading allocates nothing once
/// the buffer has grown to the connection's line length.
///
/// Unlike `BufRead::lines`, the reader exposes what is *already
/// buffered*: [`LineReader::has_buffered_line`] is how the serve loop
/// drains a batch of queued submissions without ever blocking on a
/// partial batch (an interactive client is answered after its first
/// line; a pipe saturates the batch from one `read`).
#[derive(Debug)]
pub struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Consumed prefix of `buf[..len]`.
    pos: usize,
    /// Valid bytes in `buf`.
    len: usize,
}

impl<R: std::io::Read> LineReader<R> {
    /// Wraps `inner` with a fresh (empty) line buffer.
    pub fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: Vec::new(),
            pos: 0,
            len: 0,
        }
    }

    /// `true` when a complete line is already buffered — the next
    /// [`LineReader::next_line`] will not touch the underlying reader.
    pub fn has_buffered_line(&self) -> bool {
        self.buf[self.pos..self.len].contains(&b'\n')
    }

    /// Number of complete lines currently buffered (the visible queue
    /// depth beyond the line being processed).
    pub fn buffered_lines(&self) -> usize {
        self.buf[self.pos..self.len]
            .iter()
            .filter(|b| **b == b'\n')
            .count()
    }

    /// Reads the next line (without its terminator; a trailing `\r` is
    /// stripped, matching `BufRead::lines`). Blocks until a full line
    /// or end-of-input arrives; `None` at end-of-input. The returned
    /// slice borrows the internal buffer — no allocation.
    pub fn next_line(&mut self) -> std::io::Result<Option<&str>> {
        loop {
            if let Some(nl) = self.buf[self.pos..self.len]
                .iter()
                .position(|b| *b == b'\n')
            {
                let start = self.pos;
                let mut end = self.pos + nl;
                self.pos = end + 1;
                if end > start && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                return as_line(&self.buf[start..end]).map(Some);
            }
            // No complete line buffered: compact and read more.
            if self.pos > 0 {
                self.buf.copy_within(self.pos..self.len, 0);
                self.len -= self.pos;
                self.pos = 0;
            }
            if self.len == self.buf.len() {
                self.buf.resize((self.buf.len() * 2).max(8 * 1024), 0);
            }
            let n = self.inner.read(&mut self.buf[self.len..])?;
            if n == 0 {
                if self.len == 0 {
                    return Ok(None);
                }
                // Final unterminated line.
                let mut end = self.len;
                self.pos = 0;
                self.len = 0;
                if end > 0 && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                return as_line(&self.buf[..end]).map(Some);
            }
            self.len += n;
        }
    }
}

fn as_line(bytes: &[u8]) -> std::io::Result<&str> {
    std::str::from_utf8(bytes).map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "stream did not contain valid UTF-8",
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let req = Request::Submit {
            job: JobSubmission {
                id: 7,
                model: DnnModel::Bert,
                global_batch: 128,
                iterations: 50_000.0,
                arrival_seconds: 12.5,
                deadline_seconds: Some(7_200.0),
            },
        };
        let line = serde_json::to_string(&req).unwrap();
        let back = parse_request(&line).unwrap().unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn best_effort_submission_omits_the_deadline() {
        let line = r#"{"Submit":{"job":{"id":1,"model":"ResNet50","global_batch":64,
            "iterations":100.0,"arrival_seconds":0.0}}}"#
            .replace('\n', "");
        let Request::Submit { job } = parse_request(&line).unwrap().unwrap() else {
            panic!("expected a submit");
        };
        assert_eq!(job.deadline_seconds, None);
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [
            Request::Stats {},
            Request::Shutdown {},
            Request::Withdraw {
                job: 3,
                at_seconds: 9.0,
            },
        ] {
            let line = serde_json::to_string(&req).unwrap();
            assert_eq!(parse_request(&line).unwrap().unwrap(), req);
        }
    }

    #[test]
    fn blank_lines_and_garbage_are_distinguished() {
        assert_eq!(parse_request("   ").unwrap(), None);
        assert!(parse_request("{nope}").is_err());
    }

    fn submissions() -> Vec<JobSubmission> {
        let mut subs = Vec::new();
        for (i, model) in DnnModel::ALL.into_iter().enumerate() {
            subs.push(JobSubmission {
                id: i as u64 * 1_000_003,
                model,
                global_batch: 32 << i,
                iterations: 1.5e4 + i as f64 * 0.3,
                arrival_seconds: i as f64 * 17.25,
                deadline_seconds: if i % 2 == 0 {
                    Some(i as f64 * 100.0 + 0.125)
                } else {
                    None
                },
            });
        }
        subs.push(JobSubmission {
            id: u64::MAX,
            model: DnnModel::Bert,
            global_batch: u32::MAX,
            iterations: 1e-300,
            arrival_seconds: 123456789.12345679,
            deadline_seconds: Some(9.87e12),
        });
        subs
    }

    #[test]
    fn render_request_into_matches_serde_byte_for_byte() {
        let mut requests: Vec<Request> = submissions()
            .into_iter()
            .map(|job| Request::Submit { job })
            .collect();
        requests.push(Request::Withdraw {
            job: 42,
            at_seconds: 90.5,
        });
        requests.push(Request::Stats {});
        requests.push(Request::Shutdown {});
        let mut out = String::new();
        for req in &requests {
            out.clear();
            render_request_into(req, &mut out);
            assert_eq!(out, serde_json::to_string(req).unwrap(), "{req:?}");
        }
    }

    #[test]
    fn fast_path_parses_canonical_lines_identically_to_serde() {
        let mut buf = String::new();
        for job in submissions() {
            let req = Request::Submit { job };
            buf.clear();
            render_request_into(&req, &mut buf);
            let fast = parse_submit_fast(&buf).expect("canonical line takes the fast path");
            let slow: Request = serde_json::from_str(&buf).unwrap();
            assert_eq!(fast, slow);
            assert_eq!(fast, req);
        }
    }

    #[test]
    fn fast_path_rejects_non_canonical_shapes() {
        // Reordered fields, whitespace, unknown keys, and non-submit
        // requests all fall back to serde (and still parse correctly
        // when valid).
        for line in [
            r#"{"Submit":{"job":{"model":"Bert","id":1,"global_batch":8,"iterations":1.0,"arrival_seconds":0.0,"deadline_seconds":null}}}"#,
            r#"{ "Submit":{"job":{"id":1,"model":"Bert","global_batch":8,"iterations":1.0,"arrival_seconds":0.0,"deadline_seconds":null}}}"#,
            r#"{"Withdraw":{"job":3,"at_seconds":9.0}}"#,
            r#"{"Stats":{}}"#,
        ] {
            assert!(parse_submit_fast(line).is_none(), "{line}");
            assert!(parse_request(line).unwrap().is_some(), "{line}");
        }
        // Trailing garbage is rejected by both paths.
        assert!(parse_submit_fast(
            r#"{"Submit":{"job":{"id":1,"model":"Bert","global_batch":8,"iterations":1.0,"arrival_seconds":0.0,"deadline_seconds":null}}}x"#
        )
        .is_none());
    }

    #[test]
    fn line_reader_yields_borrowed_lines_and_tracks_the_queue() {
        let text = b"alpha\nbeta\r\n\ngamma";
        let mut reader = LineReader::new(&text[..]);
        assert_eq!(reader.next_line().unwrap(), Some("alpha"));
        assert!(reader.has_buffered_line());
        assert_eq!(reader.buffered_lines(), 2);
        assert_eq!(reader.next_line().unwrap(), Some("beta"));
        assert_eq!(reader.next_line().unwrap(), Some(""));
        assert!(!reader.has_buffered_line());
        assert_eq!(reader.next_line().unwrap(), Some("gamma"));
        assert_eq!(reader.next_line().unwrap(), None);
        assert_eq!(reader.next_line().unwrap(), None);
    }

    #[test]
    fn line_reader_handles_lines_longer_than_one_refill() {
        let long = "x".repeat(100_000);
        let text = format!("{long}\nshort\n");
        let mut reader = LineReader::new(text.as_bytes());
        assert_eq!(reader.next_line().unwrap(), Some(long.as_str()));
        assert_eq!(reader.next_line().unwrap(), Some("short"));
        assert_eq!(reader.next_line().unwrap(), None);
    }
}
