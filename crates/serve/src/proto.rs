//! The JSONL wire protocol of the gateway.
//!
//! Clients speak newline-delimited JSON: one [`Request`] per line in,
//! one [`Response`] per line out, in order. The same format flows over
//! every front-end (stdin pipe, TCP socket, Unix socket) and is also
//! what the gateway WAL stores — a request line *is* the durable record
//! of the submission, so replaying the log replays the session.
//!
//! Requests use serde's externally-tagged enum encoding:
//!
//! ```json
//! {"Submit":{"job":{"id":7,"model":"Bert","global_batch":128,
//!   "iterations":50000.0,"arrival_seconds":12.5,"deadline_seconds":7200.0}}}
//! {"Withdraw":{"job":7,"at_seconds":90.0}}
//! {"Stats":{}}
//! ```

use elasticflow_perfmodel::DnnModel;
use elasticflow_sched::DecisionRecord;
use serde::{Deserialize, Serialize};

use crate::gateway::GatewayStats;

/// Wire protocol version; bumped on incompatible changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// One job submission: the serverless interface of the paper's §3.1 —
/// model, hyper-parameters, termination condition, and deadline. No GPU
/// count: the platform decides shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSubmission {
    /// Client-chosen unique job id. Resubmitting an id is rejected
    /// (which is what makes log replay idempotent).
    pub id: u64,
    /// The DNN model to train.
    pub model: DnnModel,
    /// Global batch size.
    pub global_batch: u32,
    /// Termination condition: iterations to run.
    pub iterations: f64,
    /// Arrival time in seconds on the submission clock (monotone
    /// non-decreasing across a session).
    pub arrival_seconds: f64,
    /// Absolute deadline in seconds on the same clock; `None` submits
    /// the job best-effort.
    #[serde(default)]
    pub deadline_seconds: Option<f64>,
}

/// One client request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job for an online admit/decline decision.
    Submit {
        /// The job being submitted.
        job: JobSubmission,
    },
    /// Withdraw a previously admitted job, releasing its reservation.
    Withdraw {
        /// Raw id of the job to withdraw.
        job: u64,
        /// Time of the withdrawal on the submission clock.
        at_seconds: f64,
    },
    /// Report gateway statistics.
    Stats {},
    /// Stop serving after responding (daemon front-ends exit their
    /// read loop; state is already durable, no snapshot required).
    Shutdown {},
}

/// One gateway response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The admit/decline answer to a [`Request::Submit`].
    Decision {
        /// Raw id of the submitted job.
        job: u64,
        /// 1-based sequence number of the submission in this gateway's
        /// history (equals the WAL record count after the append).
        seq: u64,
        /// Convenience flag: `true` for an admit.
        admitted: bool,
        /// The full decision record, as journaled.
        decision: DecisionRecord,
    },
    /// Acknowledgement of a [`Request::Withdraw`].
    Withdrawn {
        /// Raw id of the withdrawn job.
        job: u64,
        /// Raw ids of jobs the post-withdrawal refill could no longer
        /// satisfy (empty in the idealized model).
        lapsed: Vec<u64>,
    },
    /// Statistics snapshot.
    Stats {
        /// Cumulative gateway counters.
        stats: GatewayStats,
        /// Jobs currently holding a deadline guarantee.
        active_guaranteed: u64,
    },
    /// The request could not be served; the connection stays usable.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Acknowledgement of a [`Request::Shutdown`].
    Bye {},
}

/// Parses one request line. Blank lines yield `Ok(None)`.
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    serde_json::from_str::<Request>(trimmed)
        .map(Some)
        .map_err(|e| format!("bad request line: {e}"))
}

/// Serializes a response as one JSONL line (no trailing newline).
pub fn render_response(response: &Response) -> String {
    serde_json::to_string(response).unwrap_or_else(|e| {
        format!("{{\"Error\":{{\"message\":\"response serialization failed: {e}\"}}}}")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let req = Request::Submit {
            job: JobSubmission {
                id: 7,
                model: DnnModel::Bert,
                global_batch: 128,
                iterations: 50_000.0,
                arrival_seconds: 12.5,
                deadline_seconds: Some(7_200.0),
            },
        };
        let line = serde_json::to_string(&req).unwrap();
        let back = parse_request(&line).unwrap().unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn best_effort_submission_omits_the_deadline() {
        let line = r#"{"Submit":{"job":{"id":1,"model":"ResNet50","global_batch":64,
            "iterations":100.0,"arrival_seconds":0.0}}}"#
            .replace('\n', "");
        let Request::Submit { job } = parse_request(&line).unwrap().unwrap() else {
            panic!("expected a submit");
        };
        assert_eq!(job.deadline_seconds, None);
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [
            Request::Stats {},
            Request::Shutdown {},
            Request::Withdraw {
                job: 3,
                at_seconds: 9.0,
            },
        ] {
            let line = serde_json::to_string(&req).unwrap();
            assert_eq!(parse_request(&line).unwrap().unwrap(), req);
        }
    }

    #[test]
    fn blank_lines_and_garbage_are_distinguished() {
        assert_eq!(parse_request("   ").unwrap(), None);
        assert!(parse_request("{nope}").is_err());
    }
}
