//! The deterministic decision core of the daemon.
//!
//! A [`Gateway`] is a pure state machine over the request stream: it
//! holds an [`OnlineAdmission`] (the incremental Algorithm 1 anchored at
//! a moving origin slot), a scaling-curve cache, and cumulative
//! counters. Feeding it the same requests in the same order always
//! produces the same [`DecisionRecord`]s — no clocks, no randomness, no
//! I/O — which is what lets the daemon journal decisions and prove a
//! crash-recovered instance bit-identical to an uninterrupted one.

use std::collections::BTreeMap;

use elasticflow_cluster::ClusterSpec;
use elasticflow_core::{FillScratch, OnlineAdmission, PlanningJob};
use elasticflow_perfmodel::{DnnModel, Interconnect, ScalingCurve};
use elasticflow_sched::{DecisionRecord, DeclineReason};
use elasticflow_trace::JobId;
use serde::{Deserialize, Serialize};

use crate::proto::JobSubmission;

/// Static configuration of a gateway instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Number of servers in the cluster being admitted into.
    pub servers: u32,
    /// GPUs per server.
    pub gpus_per_server: u32,
    /// Length of one deadline-grid slot, seconds.
    pub slot_seconds: f64,
}

impl Default for GatewayConfig {
    /// The paper's large testbed: 16 servers × 8 GPUs, 60 s slots.
    fn default() -> Self {
        GatewayConfig {
            servers: 16,
            gpus_per_server: 8,
            slot_seconds: 60.0,
        }
    }
}

impl GatewayConfig {
    /// Total GPUs in the configured cluster.
    pub fn total_gpus(&self) -> u32 {
        self.servers * self.gpus_per_server
    }
}

/// Cumulative gateway counters (monotone over a session; snapshotted
/// verbatim).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayStats {
    /// Submissions processed (admitted + declined + best-effort).
    pub submissions: u64,
    /// Deadline jobs admitted with a guarantee.
    pub admitted: u64,
    /// Deadline jobs declined.
    pub declined: u64,
    /// Jobs accepted best-effort (no deadline, no reservation).
    pub best_effort: u64,
    /// Guaranteed jobs whose plans completed their work.
    pub completed: u64,
    /// Guaranteed jobs whose windows elapsed unfinished (float-edge
    /// guard; zero in the idealized model).
    pub expired: u64,
    /// Guaranteed jobs dropped by a boundary refill (zero in the
    /// idealized model).
    pub lapsed: u64,
    /// Withdraw requests honoured.
    pub withdrawn: u64,
}

/// One committed job as captured in a gateway snapshot: everything
/// needed to rebuild its [`PlanningJob`] deterministically (the curve is
/// a pure function of model, batch, and interconnect).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnapshotJob {
    /// Raw job id.
    pub id: u64,
    /// Model (keys the scaling curve).
    pub model: DnnModel,
    /// Global batch size (keys the scaling curve).
    pub global_batch: u32,
    /// Iterations still outstanding at the snapshot's origin.
    pub remaining_iterations: f64,
    /// Deadline slot relative to the snapshot's origin slot.
    pub deadline_slot: u64,
}

/// The pure online-admission state machine.
#[derive(Debug)]
pub struct Gateway {
    config: GatewayConfig,
    net: Interconnect,
    curves: BTreeMap<(DnnModel, u32), ScalingCurve>,
    online: OnlineAdmission,
    stats: GatewayStats,
    /// Reused fill workspace. Carries no decision state between calls —
    /// reuse never changes an outcome, it only skips reallocation.
    scratch: FillScratch,
}

impl Gateway {
    /// A fresh gateway at origin slot 0.
    pub fn new(config: GatewayConfig) -> Self {
        let spec = ClusterSpec::with_servers(config.servers, config.gpus_per_server);
        Gateway {
            config,
            net: Interconnect::from_spec(&spec),
            curves: BTreeMap::new(),
            online: OnlineAdmission::new(config.total_gpus(), config.slot_seconds),
            stats: GatewayStats::default(),
            scratch: FillScratch::new(),
        }
    }

    /// Rebuilds a gateway from snapshot state (origin slot, committed
    /// jobs with origin-relative windows, counters). The refill is the
    /// same deterministic fill the live gateway maintains, so the
    /// rebuilt instance answers every subsequent request identically.
    pub fn from_snapshot(
        config: GatewayConfig,
        origin_slot: u64,
        jobs: &[SnapshotJob],
        stats: GatewayStats,
    ) -> Self {
        let mut gateway = Gateway::new(config);
        gateway.stats = stats;
        let planning: Vec<PlanningJob> = jobs
            .iter()
            .map(|j| PlanningJob {
                id: JobId::new(j.id),
                curve: gateway.curve(j.model, j.global_batch),
                remaining_iterations: j.remaining_iterations,
                deadline_slot: usize::try_from(j.deadline_slot).unwrap_or(usize::MAX),
            })
            .collect();
        let (online, lapsed) = OnlineAdmission::from_parts(
            config.total_gpus(),
            config.slot_seconds,
            origin_slot,
            &planning,
        );
        // A snapshot captures a jointly feasible set, so nothing lapses
        // on rebuild; counted defensively all the same.
        gateway.stats.lapsed += lapsed.len() as u64;
        gateway.online = online;
        gateway
    }

    /// The configuration this gateway runs under.
    pub fn config(&self) -> GatewayConfig {
        self.config
    }

    /// Cumulative counters.
    pub fn stats(&self) -> GatewayStats {
        self.stats
    }

    /// Jobs currently holding a deadline guarantee.
    pub fn active_guaranteed(&self) -> u64 {
        self.online.len() as u64
    }

    /// Mean booked fraction of the cluster over the next `horizon_slots`
    /// slots, in `[0, 1]`.
    pub fn booked_fraction(&self, horizon_slots: usize) -> f64 {
        self.online.booked_fraction(horizon_slots)
    }

    /// Snapshot state: origin slot plus every committed job with its
    /// origin-relative window.
    pub fn snapshot_jobs(&self) -> (u64, Vec<SnapshotJob>) {
        let (origin, jobs) = self.online.parts();
        let snap = jobs
            .iter()
            .map(|j| SnapshotJob {
                id: j.id.raw(),
                model: j.curve.model(),
                global_batch: j.curve.global_batch(),
                remaining_iterations: j.remaining_iterations,
                deadline_slot: j.deadline_slot as u64,
            })
            .collect();
        (origin, snap)
    }

    /// The scaling curve for `(model, global_batch)` on this cluster
    /// (memoized; curve construction probes the interconnect model).
    fn curve(&mut self, model: DnnModel, global_batch: u32) -> ScalingCurve {
        let total = self.config.total_gpus();
        self.curves
            .entry((model, global_batch))
            .or_insert_with(|| ScalingCurve::build_with_max(model, global_batch, &self.net, total))
            .clone()
    }

    /// Moves the admission origin to the slot containing `seconds`,
    /// retiring finished plans and rebasing survivors.
    fn advance_to_seconds(&mut self, seconds: f64) {
        let slot = self.online.slot_of(seconds);
        let report = self.online.advance_to(slot);
        self.stats.completed += report.completed.len() as u64;
        self.stats.expired += report.expired.len() as u64;
        self.stats.lapsed += report.lapsed.len() as u64;
    }

    /// Answers one submission: advances the clock to the arrival, then
    /// runs the admit/decline decision. Best-effort jobs (no deadline)
    /// are admitted without a reservation; deadline jobs go through the
    /// incremental Algorithm 1.
    pub fn submit(&mut self, sub: &JobSubmission) -> DecisionRecord {
        self.stats.submissions += 1;
        self.advance_to_seconds(sub.arrival_seconds);
        let job_id = JobId::new(sub.id);
        let Some(deadline_seconds) = sub.deadline_seconds.filter(|d| d.is_finite()) else {
            self.stats.best_effort += 1;
            return DecisionRecord::Admit { job: job_id };
        };
        let candidate = PlanningJob {
            id: job_id,
            curve: self.curve(sub.model, sub.global_batch),
            remaining_iterations: sub.iterations,
            deadline_slot: 0, // rebased by submit below
        };
        // Conservative window: only slots that end at or before the
        // deadline count (same rounding as `SlotGrid::slots_before`).
        let deadline_slot_abs = self.online.slot_of(deadline_seconds);
        match self
            .online
            .submit_with(candidate, deadline_slot_abs, &mut self.scratch)
        {
            Ok(()) => {
                self.stats.admitted += 1;
                DecisionRecord::Admit { job: job_id }
            }
            Err(denial) => {
                self.stats.declined += 1;
                let reason = if denial.blocking_job == job_id {
                    DeclineReason::CandidateInfeasible {
                        shortfall: denial.shortfall,
                    }
                } else {
                    DeclineReason::WouldDisplace {
                        blocking_job: denial.blocking_job,
                        shortfall: denial.shortfall,
                    }
                };
                DecisionRecord::Decline {
                    job: job_id,
                    reason,
                }
            }
        }
    }

    /// Withdraws a committed job, releasing its reservation. Returns the
    /// raw ids of any jobs the refill could no longer satisfy.
    pub fn withdraw(&mut self, id: u64, at_seconds: f64) -> Vec<u64> {
        self.advance_to_seconds(at_seconds);
        self.stats.withdrawn += 1;
        let lapsed = self.online.withdraw_with(JobId::new(id), &mut self.scratch);
        self.stats.lapsed += lapsed.len() as u64;
        lapsed.iter().map(|j| j.raw()).collect()
    }

    /// Answers a run of submissions in order, pushing each decision onto
    /// `out`. Decision-equivalent to calling [`Gateway::submit`] once per
    /// entry — batching shares the fill scratch and the advance work
    /// across the run but never changes an outcome, which is what keeps
    /// the journal byte-identical across batch schedules.
    pub fn submit_batch(&mut self, subs: &[JobSubmission], out: &mut Vec<DecisionRecord>) {
        out.reserve(subs.len());
        for sub in subs {
            out.push(self.submit(sub));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Iterations equal to `seconds` of single-GPU work on the small
    /// cluster — the sizing that makes saturation arithmetic legible
    /// (one job with a 30-slot window books ≥ 30 GPU-slots).
    fn half_hour_iterations() -> f64 {
        let spec = ClusterSpec::with_servers(1, 8);
        let net = Interconnect::from_spec(&spec);
        let curve = ScalingCurve::build_with_max(DnnModel::ResNet50, 128, &net, 8);
        curve.iters_per_sec(1).expect("1 GPU is on the curve") * 1_800.0
    }

    fn sub(id: u64, arrival: f64, deadline: Option<f64>) -> JobSubmission {
        JobSubmission {
            id,
            model: DnnModel::ResNet50,
            global_batch: 128,
            iterations: half_hour_iterations(),
            arrival_seconds: arrival,
            deadline_seconds: deadline,
        }
    }

    fn small() -> GatewayConfig {
        GatewayConfig {
            servers: 1,
            gpus_per_server: 8,
            slot_seconds: 60.0,
        }
    }

    #[test]
    fn best_effort_is_always_admitted_without_reservation() {
        let mut gw = Gateway::new(small());
        for i in 0..50 {
            let d = gw.submit(&sub(i, i as f64, None));
            assert!(matches!(d, DecisionRecord::Admit { .. }));
        }
        assert_eq!(gw.active_guaranteed(), 0);
        assert_eq!(gw.stats().best_effort, 50);
    }

    #[test]
    fn deadline_jobs_admit_until_capacity_then_decline_with_provenance() {
        let mut gw = Gateway::new(small());
        let mut admitted = 0u64;
        let mut declined = 0u64;
        for i in 0..40 {
            // All jobs arrive at t=0 with a 30-minute window.
            match gw.submit(&sub(i, 0.0, Some(1_800.0))) {
                DecisionRecord::Admit { .. } => admitted += 1,
                DecisionRecord::Decline { reason, .. } => {
                    declined += 1;
                    assert!(
                        reason.shortfall().is_some(),
                        "serve declines carry structured shortfalls"
                    );
                }
                other => panic!("unexpected decision {other:?}"),
            }
        }
        assert!(admitted > 0, "an empty cluster admits something");
        assert!(declined > 0, "40 concurrent jobs exceed 8 GPUs");
        assert_eq!(gw.stats().admitted, admitted);
        assert_eq!(gw.stats().declined, declined);
        assert_eq!(gw.active_guaranteed(), admitted);
    }

    #[test]
    fn time_passing_retires_plans_and_frees_capacity() {
        let mut gw = Gateway::new(small());
        let mut first_declined_at = None;
        for i in 0..40 {
            if let DecisionRecord::Decline { .. } = gw.submit(&sub(i, 0.0, Some(1_800.0))) {
                first_declined_at = Some(i);
                break;
            }
        }
        let full_at = first_declined_at.expect("cluster saturates");
        // Same submission a day later: every plan has retired.
        let d = gw.submit(&sub(1_000, 86_400.0, Some(88_200.0)));
        assert!(matches!(d, DecisionRecord::Admit { .. }));
        assert_eq!(gw.stats().completed, full_at);
    }

    #[test]
    fn identical_streams_produce_identical_decisions() {
        let stream: Vec<JobSubmission> = (0..200)
            .map(|i| {
                sub(
                    i,
                    f64::from(i as u32) * 30.0,
                    if i % 3 == 0 {
                        None
                    } else {
                        Some(
                            f64::from(i as u32) * 30.0
                                + 1_200.0
                                + f64::from((i % 7) as u32) * 600.0,
                        )
                    },
                )
            })
            .collect();
        let mut a = Gateway::new(small());
        let mut b = Gateway::new(small());
        for s in &stream {
            assert_eq!(a.submit(s), b.submit(s));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn snapshot_round_trip_preserves_future_decisions() {
        let mut live = Gateway::new(small());
        for i in 0..30 {
            let _ = live.submit(&sub(
                i,
                f64::from(i as u32) * 45.0,
                Some(f64::from(i as u32) * 45.0 + 2_400.0),
            ));
        }
        let (origin, jobs) = live.snapshot_jobs();
        let mut rebuilt = Gateway::from_snapshot(small(), origin, &jobs, live.stats());
        assert_eq!(rebuilt.stats(), live.stats());
        assert_eq!(rebuilt.active_guaranteed(), live.active_guaranteed());
        // The rebuilt gateway must answer the entire future identically.
        for i in 30..60 {
            let s = sub(
                i,
                f64::from(i as u32) * 45.0,
                Some(f64::from(i as u32) * 45.0 + 1_500.0),
            );
            assert_eq!(live.submit(&s), rebuilt.submit(&s));
        }
        assert_eq!(live.stats(), rebuilt.stats());
    }

    #[test]
    fn batched_submission_matches_one_at_a_time() {
        let stream: Vec<JobSubmission> = (0..120)
            .map(|i| {
                sub(
                    i,
                    f64::from(i as u32) * 20.0,
                    if i % 4 == 0 {
                        None
                    } else {
                        Some(f64::from(i as u32) * 20.0 + 900.0 + f64::from((i % 5) as u32) * 300.0)
                    },
                )
            })
            .collect();
        let mut sequential = Gateway::new(small());
        let expected: Vec<DecisionRecord> = stream.iter().map(|s| sequential.submit(s)).collect();
        for chunk_size in [1usize, 3, 17, 120] {
            let mut batched = Gateway::new(small());
            let mut got = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                batched.submit_batch(chunk, &mut got);
            }
            assert_eq!(got, expected, "chunk size {chunk_size}");
            assert_eq!(batched.stats(), sequential.stats());
        }
    }

    #[test]
    fn withdraw_frees_the_reservation() {
        let mut gw = Gateway::new(small());
        let mut last_admitted = None;
        for i in 0..40 {
            match gw.submit(&sub(i, 0.0, Some(1_800.0))) {
                DecisionRecord::Admit { job } => last_admitted = Some(job.raw()),
                DecisionRecord::Decline { .. } => break,
                other => panic!("unexpected decision {other:?}"),
            }
        }
        let victim = last_admitted.expect("something admitted");
        let lapsed = gw.withdraw(victim, 0.0);
        assert!(lapsed.is_empty());
        // The freed share re-admits an equivalent job.
        let d = gw.submit(&sub(900, 0.0, Some(1_800.0)));
        assert!(matches!(d, DecisionRecord::Admit { .. }));
    }
}
