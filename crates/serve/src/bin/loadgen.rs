//! `elasticflow-loadgen` — deterministic request streams for the
//! gateway.
//!
//! ```text
//! elasticflow-loadgen [--arrivals N] [--servers N] [--gpus-per-server N]
//!                     [--mean-interarrival S] [--best-effort-fraction F]
//!                     [--seed N] [--out PATH] [--shutdown] [--rate N]
//! ```
//!
//! Writes one JSONL [`Request`] per line to stdout (or `--out`), ready
//! to pipe straight into `elasticflow-serve`:
//!
//! ```text
//! elasticflow-loadgen --arrivals 100000 | elasticflow-serve --state-dir state
//! ```
//!
//! The stream is a pure function of its flags — replaying the same
//! invocation against a fresh and a crash-recovered daemon must produce
//! byte-identical decision journals, and the CI smoke checks exactly
//! that. `--shutdown` appends a final `{"Shutdown":{}}` line for
//! socket sessions that need an explicit goodbye. `--rate N` caps
//! emission at N lines per second (wall clock) — an open-loop driver
//! for latency-under-load experiments; the default is as-fast-as-
//! possible. Pacing changes only *when* bytes leave the process, never
//! which bytes, so `--rate` cannot perturb the decision stream.
//!
//! [`Request`]: elasticflow_serve::Request

use std::io::{BufWriter, Write};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use elasticflow_serve::{loadgen_stream, render_request_into, LoadgenConfig, Request};

#[derive(Debug, Default)]
struct Options {
    config: LoadgenConfig,
    out: Option<String>,
    shutdown: bool,
    /// Lines per second; `None` = unpaced.
    rate: Option<u64>,
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--arrivals" => {
                opts.config.arrivals = parse_num(&value("--arrivals")?, "--arrivals")?;
            }
            "--servers" => opts.config.servers = parse_num(&value("--servers")?, "--servers")?,
            "--gpus-per-server" => {
                opts.config.gpus_per_server =
                    parse_num(&value("--gpus-per-server")?, "--gpus-per-server")?;
            }
            "--mean-interarrival" => {
                let v: f64 = parse_num(&value("--mean-interarrival")?, "--mean-interarrival")?;
                if !(v.is_finite() && v > 0.0) {
                    return Err("--mean-interarrival needs a positive number".to_owned());
                }
                opts.config.mean_interarrival = v;
            }
            "--best-effort-fraction" => {
                let v: f64 =
                    parse_num(&value("--best-effort-fraction")?, "--best-effort-fraction")?;
                if !(0.0..=1.0).contains(&v) {
                    return Err("--best-effort-fraction needs a value in [0, 1]".to_owned());
                }
                opts.config.best_effort_fraction = v;
            }
            "--seed" => opts.config.seed = parse_num(&value("--seed")?, "--seed")?,
            "--out" => opts.out = Some(value("--out")?),
            "--shutdown" => opts.shutdown = true,
            "--rate" => {
                let n: u64 = parse_num(&value("--rate")?, "--rate")?;
                if n == 0 {
                    return Err("--rate needs a positive lines-per-second count".to_owned());
                }
                opts.rate = Some(n);
            }
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: cannot parse {text:?}"))
}

fn emit<W: Write>(opts: &Options, out: W) -> std::io::Result<()> {
    let mut out = BufWriter::new(out);
    let mut pacer = opts.rate.map(Pacer::new);
    // One serialization buffer for the whole stream: rendering is the
    // hand renderer the daemon's WAL uses, so steady-state emission
    // allocates nothing per line.
    let mut line = String::new();
    for request in loadgen_stream(&opts.config) {
        if let Some(pacer) = &mut pacer {
            pacer.wait();
            // A paced stream should reach the daemon line by line, not
            // parked in the writer's buffer.
            out.flush()?;
        }
        serialize_line(&request, &mut line, &mut out)?;
    }
    if opts.shutdown {
        serialize_line(&Request::Shutdown {}, &mut line, &mut out)?;
    }
    out.flush()
}

/// Open-loop pacing: line `k` is released at `k / rate` seconds after
/// the stream started, independent of how long earlier writes took.
struct Pacer {
    start: Instant,
    emitted: u64,
    rate: u64,
}

impl Pacer {
    fn new(rate: u64) -> Self {
        Pacer {
            start: Instant::now(),
            emitted: 0,
            rate,
        }
    }

    fn wait(&mut self) {
        let due = Duration::from_secs_f64(self.emitted as f64 / self.rate as f64);
        let elapsed = self.start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        self.emitted += 1;
    }
}

fn serialize_line<W: Write>(
    request: &Request,
    line: &mut String,
    out: &mut W,
) -> std::io::Result<()> {
    line.clear();
    render_request_into(request, line);
    line.push('\n');
    out.write_all(line.as_bytes())
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1).collect()) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: elasticflow-loadgen [--arrivals N] [--servers N] \
                 [--gpus-per-server N] [--mean-interarrival S] \
                 [--best-effort-fraction F] [--seed N] [--out PATH] [--shutdown] \
                 [--rate N]"
            );
            return ExitCode::FAILURE;
        }
    };
    let result = match &opts.out {
        Some(path) => match std::fs::File::create(path) {
            Ok(file) => emit(&opts, file),
            Err(e) => {
                eprintln!("elasticflow-loadgen: creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => emit(&opts, std::io::stdout().lock()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("elasticflow-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
