//! `elasticflow-serve` — the scheduler-as-a-service daemon.
//!
//! ```text
//! elasticflow-serve --state-dir PATH [--resume]
//!                   [--servers N] [--gpus-per-server N] [--slot-seconds S]
//!                   [--snapshot-every N] [--metrics ADDR]
//!                   [--listen ADDR | --unix PATH]
//!                   [--batch N] [--fsync never|record|batch|interval:N]
//!                   [--latency-clock monotonic|tick]
//!                   [--die-after N]
//! ```
//!
//! By default the daemon serves one session over stdin/stdout: one
//! JSONL [`Request`] per input line, one [`Response`] per output line.
//! `--listen` serves TCP connections sequentially instead; `--unix`
//! (Unix only) does the same over a Unix socket. `--metrics` exposes
//! the Prometheus endpoint on a background thread.
//!
//! `--resume` is required to open a state directory that already holds
//! gateway state (guarding against accidentally replaying into the
//! wrong directory); recovery then proceeds snapshot → journal rewind →
//! WAL replay and the daemon continues exactly where the dead one
//! stopped. `--die-after N` crashes the process (exit 17) after the
//! N-th accepted submission — the deterministic kill switch used by the
//! recovery tests and the CI smoke.
//!
//! [`Request`]: elasticflow_serve::Request
//! [`Response`]: elasticflow_serve::Response

use std::process::ExitCode;

use elasticflow_persist::FsyncPolicy;
use elasticflow_serve::{
    gateway_registry, serve_connection, spawn_exporter, Daemon, DaemonConfig, GatewayConfig,
    Resumption,
};
use elasticflow_telemetry::{Clock, MonotonicClock, TickClock};

#[derive(Debug)]
struct Options {
    state_dir: String,
    resume: bool,
    config: DaemonConfig,
    metrics: Option<String>,
    listen: Option<String>,
    unix: Option<String>,
    batch: usize,
    tick_clock: bool,
    die_after: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            state_dir: "elasticflow-state".to_owned(),
            resume: false,
            config: DaemonConfig::default(),
            metrics: None,
            listen: None,
            unix: None,
            batch: 1,
            tick_clock: false,
            die_after: None,
        }
    }
}

fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--state-dir" => opts.state_dir = value("--state-dir")?,
            "--resume" => opts.resume = true,
            "--servers" => {
                opts.config.gateway.servers = parse_num(&value("--servers")?, "--servers")?;
            }
            "--gpus-per-server" => {
                opts.config.gateway.gpus_per_server =
                    parse_num(&value("--gpus-per-server")?, "--gpus-per-server")?;
            }
            "--slot-seconds" => {
                let v: f64 = parse_num(&value("--slot-seconds")?, "--slot-seconds")?;
                if !(v.is_finite() && v > 0.0) {
                    return Err("--slot-seconds needs a positive number".to_owned());
                }
                opts.config.gateway.slot_seconds = v;
            }
            "--snapshot-every" => {
                opts.config.snapshot_every =
                    parse_num(&value("--snapshot-every")?, "--snapshot-every")?;
            }
            "--batch" => {
                let n: usize = parse_num(&value("--batch")?, "--batch")?;
                if n == 0 {
                    return Err("--batch needs a positive count".to_owned());
                }
                opts.batch = n;
            }
            "--fsync" => opts.config.fsync = parse_fsync(&value("--fsync")?)?,
            "--metrics" => opts.metrics = Some(value("--metrics")?),
            "--listen" => opts.listen = Some(value("--listen")?),
            "--unix" => opts.unix = Some(value("--unix")?),
            "--latency-clock" => match value("--latency-clock")?.as_str() {
                "monotonic" => opts.tick_clock = false,
                "tick" => opts.tick_clock = true,
                other => return Err(format!("--latency-clock: unknown clock {other:?}")),
            },
            "--die-after" => {
                opts.die_after = Some(parse_num(&value("--die-after")?, "--die-after")?);
            }
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if opts.listen.is_some() && opts.unix.is_some() {
        return Err("--listen and --unix are mutually exclusive".to_owned());
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: cannot parse {text:?}"))
}

fn parse_fsync(text: &str) -> Result<FsyncPolicy, String> {
    match text {
        "never" => Ok(FsyncPolicy::Never),
        "record" => Ok(FsyncPolicy::PerRecord),
        "batch" => Ok(FsyncPolicy::PerBatch),
        other => match other.strip_prefix("interval:") {
            Some(n) => Ok(FsyncPolicy::Interval(parse_num(n, "--fsync interval")?)),
            None => Err(format!(
                "--fsync: unknown policy {other:?} (expected never, record, batch, or interval:N)"
            )),
        },
    }
}

fn describe_resumption(resumption: &Resumption, config: &GatewayConfig) {
    match resumption {
        Resumption::Fresh => eprintln!(
            "elasticflow-serve: fresh state ({} servers x {} GPUs, {}s slots)",
            config.servers, config.gpus_per_server, config.slot_seconds
        ),
        Resumption::Resumed { snapshot, replayed } => match snapshot {
            Some(seq) => eprintln!(
                "elasticflow-serve: resumed from snapshot {seq} + {replayed} replayed records"
            ),
            None => eprintln!(
                "elasticflow-serve: resumed by full replay ({replayed} records, no snapshot)"
            ),
        },
    }
}

fn run(opts: Options) -> Result<(), String> {
    let path = std::path::PathBuf::from(&opts.state_dir);
    if path.join("gateway.wal").exists() && !opts.resume {
        return Err(format!(
            "state dir {} already holds gateway state; pass --resume to recover it",
            opts.state_dir
        ));
    }
    let clock: Box<dyn Clock> = if opts.tick_clock {
        Box::new(TickClock::new(1_000))
    } else {
        Box::new(MonotonicClock::new())
    };
    let registry = gateway_registry();
    let (mut daemon, resumption) =
        Daemon::open(&path, opts.config, clock, registry).map_err(|e| e.to_string())?;
    describe_resumption(&resumption, &opts.config.gateway);

    if let Some(addr) = &opts.metrics {
        let (bound, _handle) = spawn_exporter(daemon.registry(), addr)
            .map_err(|e| format!("--metrics {addr}: {e}"))?;
        eprintln!("elasticflow-serve: metrics on http://{bound}/metrics");
    }

    if let Some(addr) = &opts.listen {
        let listener =
            std::net::TcpListener::bind(addr).map_err(|e| format!("--listen {addr}: {e}"))?;
        let bound = listener.local_addr().map_err(|e| e.to_string())?;
        eprintln!("elasticflow-serve: listening on {bound}");
        for stream in listener.incoming() {
            let stream = stream.map_err(|e| e.to_string())?;
            let writer = stream.try_clone().map_err(|e| e.to_string())?;
            let shutdown =
                serve_connection(&mut daemon, stream, writer, opts.batch, opts.die_after)
                    .map_err(|e| e.to_string())?;
            if shutdown {
                break;
            }
        }
        return finish(&mut daemon);
    }

    #[cfg(unix)]
    if let Some(sock) = &opts.unix {
        let _ = std::fs::remove_file(sock);
        let listener = std::os::unix::net::UnixListener::bind(sock)
            .map_err(|e| format!("--unix {sock}: {e}"))?;
        eprintln!("elasticflow-serve: listening on unix socket {sock}");
        for stream in listener.incoming() {
            let stream = stream.map_err(|e| e.to_string())?;
            let writer = stream.try_clone().map_err(|e| e.to_string())?;
            let shutdown =
                serve_connection(&mut daemon, stream, writer, opts.batch, opts.die_after)
                    .map_err(|e| e.to_string())?;
            if shutdown {
                break;
            }
        }
        return finish(&mut daemon);
    }
    #[cfg(not(unix))]
    if opts.unix.is_some() {
        return Err("--unix is only available on Unix platforms".to_owned());
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_connection(
        &mut daemon,
        stdin.lock(),
        stdout.lock(),
        opts.batch,
        opts.die_after,
    )
    .map_err(|e| e.to_string())?;
    finish(&mut daemon)
}

/// Graceful exit: one final snapshot so the next open replays nothing.
fn finish(daemon: &mut Daemon) -> Result<(), String> {
    if daemon.wal_records() > 0 {
        daemon.snapshot_now().map_err(|e| e.to_string())?;
    }
    let stats = daemon.stats();
    eprintln!(
        "elasticflow-serve: {} submissions ({} admitted, {} declined, {} best-effort), \
         {} journal entries",
        stats.submissions,
        stats.admitted,
        stats.declined,
        stats.best_effort,
        daemon.journal_entries()
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1).collect()) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("{message}");
            eprintln!(
                "usage: elasticflow-serve --state-dir PATH [--resume] [--servers N] \
                 [--gpus-per-server N] [--slot-seconds S] [--snapshot-every N] \
                 [--metrics ADDR] [--listen ADDR | --unix PATH] \
                 [--batch N] [--fsync never|record|batch|interval:N] \
                 [--latency-clock monotonic|tick] [--die-after N]"
            );
            return ExitCode::FAILURE;
        }
    };
    match run(opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("elasticflow-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
