//! elasticflow-serve — the scheduler as a long-running service.
//!
//! Everything below `crates/serve` turns the incremental admission core
//! into a daemon: a process that accepts a *stream* of job submissions
//! over newline-delimited JSON (stdin pipe, TCP socket, or Unix
//! socket), answers each with an online admit/decline decision from
//! [`elasticflow_core::OnlineAdmission`], and makes every byte of that
//! history durable enough to survive `kill -9`.
//!
//! The layering, bottom to top:
//!
//! - [`proto`] — the JSONL wire protocol ([`Request`]/[`Response`]);
//!   the request line doubles as the WAL record.
//! - [`gateway`] — the pure decision core: deterministic, clock-free,
//!   I/O-free. Same requests in, same [`DecisionRecord`]s out.
//! - [`store`] — the state directory: `EFGW`-framed submission WAL,
//!   explain-compatible `decisions.jsonl`, `EFGS` snapshots.
//! - [`daemon`] — ties them together with write-ahead discipline and
//!   exact crash recovery (snapshot + journal rewind + WAL replay).
//! - [`metrics`] — the shared Prometheus registry and scrape endpoint.
//! - [`loadgen`] — deterministic open-loop arrival streams for the
//!   companion `elasticflow-loadgen` binary and the serve benchmarks.
//!
//! The determinism argument, in one paragraph: the gateway consults no
//! wall clock (submission time arrives *in* the request), no RNG, and
//! no ambient state, so its decisions are a pure function of the
//! request prefix. The WAL captures that prefix before each decision
//! runs. A crash therefore loses at most work that can be recomputed:
//! recovery rebuilds the gateway from the newest snapshot, truncates
//! the decision journal to the snapshot's entry count, and replays the
//! WAL suffix — regenerating the journal's lost tail byte-for-byte.
//!
//! [`DecisionRecord`]: elasticflow_sched::DecisionRecord
//! [`Request`]: proto::Request
//! [`Response`]: proto::Response

pub mod daemon;
pub mod gateway;
pub mod loadgen;
pub mod metrics;
pub mod proto;
pub mod store;

pub use daemon::{Daemon, DaemonConfig, Resumption, ServeError};
pub use gateway::{Gateway, GatewayConfig, GatewayStats, SnapshotJob};
pub use loadgen::{loadgen_stream, LoadgenConfig};
pub use metrics::{gateway_registry, spawn_exporter, SharedRegistry};
pub use proto::{
    parse_request, render_request_into, render_response, JobSubmission, LineReader, Request,
    Response,
};
pub use store::{GatewayDir, GatewaySnapshot};

pub use elasticflow_persist::FsyncPolicy;

use std::io::{Read, Write};

/// One input line's place in a batch: a parsed request (answered by the
/// daemon) or a parse failure (answered in place, in order).
enum LineSlot {
    Parsed,
    Failed(String),
}

/// Drives a daemon over one line-oriented connection: reads requests
/// from `input`, writes one response line per request to `output`.
///
/// Up to `batch` requests are drained per iteration — the first line
/// may block, the rest are taken only if their bytes are already
/// buffered, so an interactive client is answered after its first line
/// while a pipe saturates the batch from one read. At `batch == 1`
/// this is exactly the old line-at-a-time loop.
///
/// Returns `Ok(true)` when the client asked for shutdown, `Ok(false)`
/// at end-of-input. `die_after` aborts the process with exit code 17
/// once that many submissions are on disk — checked after each batch,
/// the deterministic crash switch the recovery tests and the CI smoke
/// flip.
pub fn serve_connection<R: Read, W: Write>(
    daemon: &mut Daemon,
    input: R,
    mut output: W,
    batch: usize,
    die_after: Option<u64>,
) -> std::io::Result<bool> {
    let batch = batch.max(1);
    let mut reader = LineReader::new(input);
    let mut slots: Vec<LineSlot> = Vec::with_capacity(batch);
    let mut requests: Vec<Request> = Vec::with_capacity(batch);
    let mut responses: Vec<Response> = Vec::with_capacity(batch);
    let mut out_buf = String::new();
    loop {
        slots.clear();
        requests.clear();
        let mut saw_shutdown = false;
        let mut eof = false;
        while slots.len() < batch {
            // Only the batch's first line may block; the rest must
            // already be buffered.
            if !slots.is_empty() && !reader.has_buffered_line() {
                break;
            }
            match reader.next_line()? {
                None => {
                    eof = true;
                    break;
                }
                Some(line) => match parse_request(line) {
                    Ok(None) => continue, // blank line: no response
                    Ok(Some(request)) => {
                        saw_shutdown = matches!(request, Request::Shutdown {});
                        requests.push(request);
                        slots.push(LineSlot::Parsed);
                        if saw_shutdown {
                            break;
                        }
                    }
                    Err(message) => slots.push(LineSlot::Failed(message)),
                },
            }
        }
        if slots.is_empty() {
            return Ok(false);
        }

        daemon.note_queue_depth(reader.buffered_lines() as u64);
        responses.clear();
        daemon.handle_batch(&requests, &mut responses);

        out_buf.clear();
        let mut next = 0;
        for slot in &slots {
            match slot {
                LineSlot::Parsed => {
                    out_buf.push_str(&render_response(&responses[next]));
                    next += 1;
                }
                LineSlot::Failed(message) => {
                    out_buf.push_str(&render_response(&Response::Error {
                        message: message.clone(),
                    }));
                }
            }
            out_buf.push('\n');
        }
        output.write_all(out_buf.as_bytes())?;
        output.flush()?;

        if let Some(limit) = die_after {
            if daemon.wal_records() >= limit {
                // A real crash: no snapshot, no log finalization, no
                // unwinding — recovery has to cope with exactly this.
                std::process::exit(17);
            }
        }
        if saw_shutdown {
            return Ok(true);
        }
        if eof {
            return Ok(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_perfmodel::DnnModel;
    use elasticflow_telemetry::TickClock;

    #[test]
    fn serve_connection_answers_each_line_in_order() {
        let root = std::env::temp_dir().join(format!("ef-serve-lib-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let (mut daemon, _) = Daemon::open(
            &root,
            DaemonConfig::default(),
            Box::new(TickClock::new(100)),
            gateway_registry(),
        )
        .expect("daemon opens");
        let mut input = String::new();
        for i in 0..3 {
            let req = Request::Submit {
                job: JobSubmission {
                    id: i,
                    model: DnnModel::ResNet50,
                    global_batch: 128,
                    iterations: 1_000.0,
                    arrival_seconds: i as f64,
                    deadline_seconds: Some(3_600.0),
                },
            };
            input.push_str(&serde_json::to_string(&req).unwrap());
            input.push('\n');
        }
        input.push_str("{\"Stats\":{}}\n\n{\"Shutdown\":{}}\n");
        let mut out = Vec::new();
        let shutdown =
            serve_connection(&mut daemon, input.as_bytes(), &mut out, 1, None).expect("serves");
        assert!(shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 5, "3 decisions + stats + bye");
        for line in &lines[..3] {
            assert!(line.starts_with("{\"Decision\":"), "got {line}");
        }
        assert!(lines[3].starts_with("{\"Stats\":"));
        assert_eq!(lines[4], "{\"Bye\":{}}");
    }

    #[test]
    fn batched_serving_answers_every_line_in_order() {
        let root = std::env::temp_dir().join(format!("ef-serve-lib-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let (mut daemon, _) = Daemon::open(
            &root,
            DaemonConfig::default(),
            Box::new(TickClock::new(100)),
            gateway_registry(),
        )
        .expect("daemon opens");
        let mut input = String::new();
        for i in 0..10 {
            let req = Request::Submit {
                job: JobSubmission {
                    id: i,
                    model: DnnModel::ResNet50,
                    global_batch: 128,
                    iterations: 1_000.0,
                    arrival_seconds: i as f64,
                    deadline_seconds: Some(3_600.0),
                },
            };
            input.push_str(&serde_json::to_string(&req).unwrap());
            input.push('\n');
        }
        // A malformed line must be answered in place, in order.
        input.push_str("this is not json\n");
        input.push_str("{\"Shutdown\":{}}\n");
        let mut out = Vec::new();
        let shutdown =
            serve_connection(&mut daemon, input.as_bytes(), &mut out, 4, None).expect("serves");
        assert!(shutdown);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 12, "10 decisions + 1 error + bye");
        for (i, line) in lines[..10].iter().enumerate() {
            assert!(line.starts_with("{\"Decision\":"), "line {i}: {line}");
            assert!(line.contains(&format!("\"job\":{i},")), "line {i}: {line}");
        }
        assert!(lines[10].starts_with("{\"Error\":"), "got {}", lines[10]);
        assert_eq!(lines[11], "{\"Bye\":{}}");
        assert_eq!(daemon.wal_records(), 10);
    }
}
