//! The durable daemon around the pure [`Gateway`].
//!
//! Every accepted request is appended to the gateway WAL *before* the
//! decision runs; every decision is appended to the JSONL journal
//! *after*. Because the gateway is deterministic, that pair of logs
//! makes crash recovery exact: resume loads the newest valid snapshot,
//! rewinds the journal to the entry count the snapshot covers, and
//! replays the WAL suffix through a rebuilt gateway — regenerating,
//! byte for byte, the journal lines the crash cut off. A recovered
//! daemon's `decisions.jsonl` is therefore identical to the file an
//! uninterrupted run would have produced, which the recovery tests (and
//! the CI smoke) check with a literal byte comparison.
//!
//! Idempotence falls out of the same discipline: duplicate submission
//! ids are rejected *before* the WAL append, so the log never contains
//! a duplicate and replay never has to suppress one.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::Write;

use elasticflow_persist::{PersistError, RecordLog, PERSIST_VERSION};
use elasticflow_sched::DecisionRecord;
use elasticflow_telemetry::{Clock, JournalEntry, DECISION_LATENCY};

use crate::gateway::{Gateway, GatewayConfig, GatewayStats};
use crate::metrics::{
    self, SharedRegistry, ACTIVE_GUARANTEED, BOOKED_FRACTION, BOOKED_HORIZON_SLOTS,
    DECISIONS_TOTAL, DECLINES_TOTAL,
};
use crate::proto::{JobSubmission, Request, Response};
use crate::store::{GatewayDir, GatewaySnapshot};

/// Daemon-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonConfig {
    /// The decision core's cluster and grid parameters.
    pub gateway: GatewayConfig,
    /// Write a snapshot every this many submissions (0 disables
    /// periodic snapshots; recovery then replays the whole WAL).
    pub snapshot_every: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            gateway: GatewayConfig::default(),
            snapshot_every: 1_000,
        }
    }
}

/// What [`Daemon::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resumption {
    /// No prior state: a fresh WAL and journal were created.
    Fresh,
    /// Prior state was recovered.
    Resumed {
        /// Snapshot sequence number loaded (`None` = genesis replay).
        snapshot: Option<u64>,
        /// WAL records replayed on top of the snapshot.
        replayed: u64,
    },
}

/// Failures opening or resuming a daemon.
#[derive(Debug)]
pub enum ServeError {
    /// The persistence layer failed.
    Persist(PersistError),
    /// The on-disk state was produced under a different gateway
    /// configuration; resuming under the requested one would change
    /// history.
    ConfigMismatch {
        /// Configuration recorded in the snapshot.
        stored: GatewayConfig,
        /// Configuration the daemon was asked to run with.
        requested: GatewayConfig,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Persist(e) => write!(f, "gateway persistence error: {e}"),
            ServeError::ConfigMismatch { stored, requested } => write!(
                f,
                "state dir was written under {stored:?} but the daemon was configured with \
                 {requested:?}; refusing to resume under a different cluster"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Persist(e) => Some(e),
            ServeError::ConfigMismatch { .. } => None,
        }
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Persist(PersistError::Io(e))
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Persist(PersistError::Decode(e))
    }
}

/// The long-running gateway daemon: decision core + durable logs +
/// metrics.
#[derive(Debug)]
pub struct Daemon {
    config: DaemonConfig,
    dir: GatewayDir,
    gateway: Gateway,
    wal: RecordLog,
    journal: File,
    journal_entries: u64,
    seen: BTreeSet<u64>,
    clock: Box<dyn Clock>,
    registry: SharedRegistry,
}

impl Daemon {
    /// Opens (or resumes) a daemon over the state directory at `root`.
    ///
    /// With prior state present, recovery runs unconditionally: newest
    /// valid snapshot → journal rewind → WAL-suffix replay. `clock`
    /// feeds only the latency histogram — it never influences a
    /// decision.
    pub fn open(
        root: &std::path::Path,
        config: DaemonConfig,
        clock: Box<dyn Clock>,
        registry: SharedRegistry,
    ) -> Result<(Self, Resumption), ServeError> {
        let dir = GatewayDir::open(root)?;
        if !dir.has_state() {
            let (wal, journal) = dir.create_genesis()?;
            let daemon = Daemon {
                config,
                dir,
                gateway: Gateway::new(config.gateway),
                wal,
                journal,
                journal_entries: 0,
                seen: BTreeSet::new(),
                clock,
                registry,
            };
            return Ok((daemon, Resumption::Fresh));
        }

        let payloads = dir.recover_wal()?;
        let (snapshot_seq, gateway, covered_records, journal_entries) =
            match dir.latest_valid_snapshot()? {
                Some((seq, snap, _skipped)) => {
                    if snap.config != config.gateway {
                        return Err(ServeError::ConfigMismatch {
                            stored: snap.config,
                            requested: config.gateway,
                        });
                    }
                    if snap.wal_records > payloads.len() as u64 {
                        return Err(ServeError::Persist(PersistError::Corrupt(format!(
                            "snapshot {seq} covers {} WAL records but only {} survive on disk",
                            snap.wal_records,
                            payloads.len()
                        ))));
                    }
                    let gateway = Gateway::from_snapshot(
                        config.gateway,
                        snap.origin_slot,
                        &snap.jobs,
                        snap.stats,
                    );
                    (Some(seq), gateway, snap.wal_records, snap.journal_entries)
                }
                None => (None, Gateway::new(config.gateway), 0, 0),
            };

        let journal = dir.rewind_journal(journal_entries)?;
        let wal = dir.reopen_wal(payloads.len() as u64)?;
        let mut daemon = Daemon {
            config,
            dir,
            gateway,
            wal,
            journal,
            journal_entries,
            seen: BTreeSet::new(),
            clock,
            registry,
        };

        // The duplicate-id guard must cover the entire submission
        // history. Records folded into the snapshot are scanned here;
        // the replay below re-inserts the suffix through the live path.
        let covered = usize::try_from(covered_records).unwrap_or(usize::MAX);
        for line in &payloads[..covered] {
            if let Ok(Request::Submit { job }) = serde_json::from_str::<Request>(line) {
                daemon.seen.insert(job.id);
            }
        }

        let replay = &payloads[covered..];
        for line in replay {
            let request: Request = serde_json::from_str(line).map_err(|e| {
                ServeError::Persist(PersistError::Corrupt(format!(
                    "gateway WAL record failed to parse on replay: {e}"
                )))
            })?;
            daemon.apply(&request, false)?;
        }
        daemon.publish_gauges();
        Ok((
            daemon,
            Resumption::Resumed {
                snapshot: snapshot_seq,
                replayed: replay.len() as u64,
            },
        ))
    }

    /// The daemon's configuration.
    pub fn config(&self) -> DaemonConfig {
        self.config
    }

    /// Cumulative gateway counters.
    pub fn stats(&self) -> GatewayStats {
        self.gateway.stats()
    }

    /// Journal entries written so far (excluding the header line).
    pub fn journal_entries(&self) -> u64 {
        self.journal_entries
    }

    /// WAL records accepted so far.
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// The shared metrics registry (hand to
    /// [`crate::metrics::spawn_exporter`]).
    pub fn registry(&self) -> SharedRegistry {
        std::sync::Arc::clone(&self.registry)
    }

    /// Handles one raw input line; `None` for blank lines.
    pub fn handle_line(&mut self, line: &str) -> Option<Response> {
        match crate::proto::parse_request(line) {
            Ok(None) => None,
            Ok(Some(request)) => Some(self.handle_request(&request)),
            Err(message) => Some(Response::Error { message }),
        }
    }

    /// Handles one parsed request: logs it, decides, journals, counts.
    pub fn handle_request(&mut self, request: &Request) -> Response {
        match self.apply(request, true) {
            Ok(response) => response,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        }
    }

    /// The one request-application path, shared by live serving
    /// (`live = true`: append to the WAL, maybe snapshot) and WAL
    /// replay (`live = false`: the record is already durable). Journal
    /// appends happen on both paths — that is what regenerates the
    /// entries a crash cut off.
    fn apply(&mut self, request: &Request, live: bool) -> Result<Response, ServeError> {
        match request {
            Request::Submit { job } => self.apply_submit(job, live),
            Request::Withdraw { job, at_seconds } => {
                if live {
                    self.wal
                        .append_payload(serde_json::to_string(request)?.as_bytes())?;
                }
                let lapsed = self.gateway.withdraw(*job, *at_seconds);
                self.publish_gauges();
                Ok(Response::Withdrawn { job: *job, lapsed })
            }
            Request::Stats {} => Ok(Response::Stats {
                stats: self.gateway.stats(),
                active_guaranteed: self.gateway.active_guaranteed(),
            }),
            Request::Shutdown {} => Ok(Response::Bye {}),
        }
    }

    fn apply_submit(&mut self, job: &JobSubmission, live: bool) -> Result<Response, ServeError> {
        if self.seen.contains(&job.id) {
            return Ok(Response::Error {
                message: format!("job id {} was already submitted", job.id),
            });
        }
        if live {
            let record = serde_json::to_string(&Request::Submit { job: job.clone() })?;
            self.wal.append_payload(record.as_bytes())?;
        }
        self.seen.insert(job.id);

        let t0 = self.clock.now_nanos();
        let decision = self.gateway.submit(job);
        let elapsed = self.clock.now_nanos().saturating_sub(t0);

        let entry = JournalEntry {
            t: job.arrival_seconds,
            decision,
        };
        self.journal
            .write_all(serde_json::to_string(&entry)?.as_bytes())?;
        self.journal.write_all(b"\n")?;
        self.journal_entries += 1;

        self.record_decision(&decision, elapsed, live);
        if live
            && self.config.snapshot_every > 0
            && self
                .gateway
                .stats()
                .submissions
                .is_multiple_of(self.config.snapshot_every)
        {
            self.snapshot_now()?;
        }
        Ok(Response::Decision {
            job: job.id,
            seq: self.wal.records(),
            admitted: matches!(decision, DecisionRecord::Admit { .. }),
            decision,
        })
    }

    fn record_decision(&mut self, decision: &DecisionRecord, elapsed_nanos: u64, live: bool) {
        let mut registry = metrics::lock(&self.registry);
        registry.inc(DECISIONS_TOTAL, &[("kind", decision.kind_label())], 1.0);
        if let DecisionRecord::Decline { reason, .. } = decision {
            registry.inc(DECLINES_TOTAL, &[("reason", reason.label())], 1.0);
        }
        // Replayed decisions carry replay timing, not serving latency;
        // only live answers feed the histogram.
        if live {
            registry.observe(DECISION_LATENCY, &[], elapsed_nanos as f64 / 1e9);
        }
        drop(registry);
        self.publish_gauges();
    }

    fn publish_gauges(&mut self) {
        let active = self.gateway.active_guaranteed() as f64;
        let booked = self.gateway.booked_fraction(BOOKED_HORIZON_SLOTS);
        let mut registry = metrics::lock(&self.registry);
        registry.set_gauge(ACTIVE_GUARANTEED, &[], active);
        registry.set_gauge(BOOKED_FRACTION, &[], booked);
    }

    /// Writes a snapshot of the current state as the next file in
    /// sequence; returns its sequence number.
    pub fn snapshot_now(&mut self) -> Result<u64, PersistError> {
        self.journal.flush()?;
        let (origin_slot, jobs) = self.gateway.snapshot_jobs();
        let snap = GatewaySnapshot {
            version: PERSIST_VERSION,
            wal_records: self.wal.records(),
            journal_entries: self.journal_entries,
            config: self.config.gateway,
            origin_slot,
            stats: self.gateway.stats(),
            jobs,
        };
        self.dir.write_next_snapshot(&snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::gateway_registry;
    use elasticflow_perfmodel::DnnModel;
    use elasticflow_telemetry::TickClock;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ef-daemon-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> DaemonConfig {
        DaemonConfig {
            gateway: GatewayConfig {
                servers: 1,
                gpus_per_server: 8,
                slot_seconds: 60.0,
            },
            snapshot_every: 5,
        }
    }

    fn open(root: &std::path::Path) -> (Daemon, Resumption) {
        Daemon::open(
            root,
            config(),
            Box::new(TickClock::new(250)),
            gateway_registry(),
        )
        .expect("daemon opens")
    }

    fn submit_line(id: u64, arrival: f64, deadline: Option<f64>) -> String {
        use elasticflow_cluster::ClusterSpec;
        use elasticflow_perfmodel::{Interconnect, ScalingCurve};
        let net = Interconnect::from_spec(&ClusterSpec::with_servers(1, 8));
        let curve = ScalingCurve::build_with_max(DnnModel::ResNet50, 128, &net, 8);
        let tput = curve.iters_per_sec(1).expect("1 GPU is on the curve");
        let req = Request::Submit {
            job: JobSubmission {
                id,
                model: DnnModel::ResNet50,
                global_batch: 128,
                // 30 minutes of single-GPU work: a handful of these
                // saturate the 8-GPU test cluster inside one window.
                iterations: tput * 1_800.0,
                arrival_seconds: arrival,
                deadline_seconds: deadline,
            },
        };
        serde_json::to_string(&req).unwrap()
    }

    #[test]
    fn duplicate_ids_are_rejected_without_touching_the_logs() {
        let root = tmp("dup");
        let (mut daemon, _) = open(&root);
        let first = daemon
            .handle_line(&submit_line(1, 0.0, Some(1_800.0)))
            .unwrap();
        assert!(matches!(first, Response::Decision { .. }));
        let dup = daemon.handle_line(&submit_line(1, 5.0, None)).unwrap();
        assert!(matches!(dup, Response::Error { .. }));
        assert_eq!(daemon.wal_records(), 1);
        assert_eq!(daemon.journal_entries(), 1);
    }

    #[test]
    fn decisions_feed_the_metrics_surface() {
        let root = tmp("metrics");
        let (mut daemon, _) = open(&root);
        for i in 0..30 {
            daemon.handle_line(&submit_line(i, 0.0, Some(1_800.0)));
        }
        let registry = daemon.registry();
        let guard = metrics::lock(&registry);
        let admits = guard.counter_value(DECISIONS_TOTAL, &[("kind", "admit")]);
        let declines = guard.counter_value(DECISIONS_TOTAL, &[("kind", "decline")]);
        assert_eq!(admits + declines, 30.0);
        assert!(declines > 0.0, "8 GPUs cannot host 30 concurrent jobs");
        let histogram = guard
            .histogram(DECISION_LATENCY, &[])
            .expect("latency histogram populated");
        assert_eq!(histogram.count(), 30);
        assert_eq!(
            guard.gauge_value(ACTIVE_GUARANTEED, &[]),
            Some(f64::from(daemon.stats().admitted as u32))
        );
    }

    #[test]
    fn resume_without_snapshot_replays_the_whole_wal() {
        let root = tmp("genesis-replay");
        let journal_after = {
            let (mut daemon, resumption) = open(&root);
            assert_eq!(resumption, Resumption::Fresh);
            for i in 0..4 {
                daemon.handle_line(&submit_line(i, i as f64 * 10.0, Some(3_600.0)));
            }
            std::fs::read(daemon.dir.journal_path()).unwrap()
        };
        let (daemon, resumption) = open(&root);
        assert_eq!(
            resumption,
            Resumption::Resumed {
                snapshot: None,
                replayed: 4
            }
        );
        assert_eq!(daemon.stats().submissions, 4);
        assert_eq!(
            std::fs::read(daemon.dir.journal_path()).unwrap(),
            journal_after
        );
    }

    #[test]
    fn resume_from_snapshot_replays_only_the_suffix() {
        let root = tmp("snapshot-replay");
        {
            let (mut daemon, _) = open(&root);
            // snapshot_every = 5 → a snapshot lands at submission 5.
            for i in 0..8 {
                daemon.handle_line(&submit_line(i, i as f64 * 20.0, Some(7_200.0)));
            }
        }
        let (mut daemon, resumption) = open(&root);
        assert_eq!(
            resumption,
            Resumption::Resumed {
                snapshot: Some(1),
                replayed: 3
            }
        );
        assert_eq!(daemon.stats().submissions, 8);
        // History replayed through the dedup guard: old ids still refuse.
        let dup = daemon.handle_line(&submit_line(2, 500.0, None)).unwrap();
        assert!(matches!(dup, Response::Error { .. }));
    }

    #[test]
    fn resume_under_a_different_cluster_is_refused() {
        let root = tmp("config-mismatch");
        {
            let (mut daemon, _) = open(&root);
            for i in 0..6 {
                daemon.handle_line(&submit_line(i, 0.0, Some(3_600.0)));
            }
        }
        let mut other = config();
        other.gateway.servers = 2;
        let err = Daemon::open(
            &root,
            other,
            Box::new(TickClock::new(250)),
            gateway_registry(),
        )
        .map(|(d, r)| (d.config(), r))
        .expect_err("mismatched config refused");
        assert!(matches!(err, ServeError::ConfigMismatch { .. }));
    }
}
