//! The durable daemon around the pure [`Gateway`].
//!
//! Every accepted request is appended to the gateway WAL *before* the
//! decision runs; every decision is appended to the JSONL journal
//! *after*. Because the gateway is deterministic, that pair of logs
//! makes crash recovery exact: resume loads the newest valid snapshot,
//! rewinds the journal to the entry count the snapshot covers, and
//! replays the WAL suffix through a rebuilt gateway — regenerating,
//! byte for byte, the journal lines the crash cut off. A recovered
//! daemon's `decisions.jsonl` is therefore identical to the file an
//! uninterrupted run would have produced, which the recovery tests (and
//! the CI smoke) check with a literal byte comparison.
//!
//! Idempotence falls out of the same discipline: duplicate submission
//! ids are rejected *before* the WAL append, so the log never contains
//! a duplicate and replay never has to suppress one.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::Write;

use elasticflow_persist::{FsyncPolicy, PersistError, RecordLog, PERSIST_VERSION};
use elasticflow_sched::{DecisionRecord, DeclineReason};
use elasticflow_telemetry::{Clock, DECISION_LATENCY};

use crate::gateway::{Gateway, GatewayConfig, GatewayStats};
use crate::metrics::{
    self, SharedRegistry, ACTIVE_GUARANTEED, BATCH_SIZE, BOOKED_FRACTION, BOOKED_HORIZON_SLOTS,
    DECISIONS_TOTAL, DECLINES_TOTAL, QUEUE_DEPTH,
};
use crate::proto::{render_request_into, render_submit_into, JobSubmission, Request, Response};
use crate::store::{render_journal_entry_into, GatewayDir, GatewaySnapshot};

/// Daemon-level configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonConfig {
    /// The decision core's cluster and grid parameters.
    pub gateway: GatewayConfig,
    /// Write a snapshot every this many submissions (0 disables
    /// periodic snapshots; recovery then replays the whole WAL).
    pub snapshot_every: u64,
    /// When the WAL fsyncs (never / per record / per batch / every N
    /// records). Affects durability of the tail on a host crash, never
    /// the decision stream.
    pub fsync: FsyncPolicy,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            gateway: GatewayConfig::default(),
            snapshot_every: 1_000,
            fsync: FsyncPolicy::Never,
        }
    }
}

/// What [`Daemon::open`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resumption {
    /// No prior state: a fresh WAL and journal were created.
    Fresh,
    /// Prior state was recovered.
    Resumed {
        /// Snapshot sequence number loaded (`None` = genesis replay).
        snapshot: Option<u64>,
        /// WAL records replayed on top of the snapshot.
        replayed: u64,
    },
}

/// Failures opening or resuming a daemon.
#[derive(Debug)]
pub enum ServeError {
    /// The persistence layer failed.
    Persist(PersistError),
    /// The on-disk state was produced under a different gateway
    /// configuration; resuming under the requested one would change
    /// history.
    ConfigMismatch {
        /// Configuration recorded in the snapshot.
        stored: GatewayConfig,
        /// Configuration the daemon was asked to run with.
        requested: GatewayConfig,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Persist(e) => write!(f, "gateway persistence error: {e}"),
            ServeError::ConfigMismatch { stored, requested } => write!(
                f,
                "state dir was written under {stored:?} but the daemon was configured with \
                 {requested:?}; refusing to resume under a different cluster"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Persist(e) => Some(e),
            ServeError::ConfigMismatch { .. } => None,
        }
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Persist(PersistError::Io(e))
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Persist(PersistError::Decode(e))
    }
}

/// Reused per-batch workspace: indices of the submissions that passed
/// the duplicate guard, their decisions, and their latencies. Carries
/// no state between runs — every run clears it first.
#[derive(Debug, Default)]
struct BatchScratch {
    accepted: Vec<usize>,
    decisions: Vec<DecisionRecord>,
    latencies: Vec<u64>,
}

/// The long-running gateway daemon: decision core + durable logs +
/// metrics.
#[derive(Debug)]
pub struct Daemon {
    config: DaemonConfig,
    dir: GatewayDir,
    gateway: Gateway,
    wal: RecordLog,
    journal: File,
    journal_entries: u64,
    seen: BTreeSet<u64>,
    clock: Box<dyn Clock>,
    registry: SharedRegistry,
    /// Reused WAL render buffer: one pass per batch, sliced by
    /// `wal_offsets` into per-record payloads for the group commit.
    wal_buf: String,
    wal_offsets: Vec<usize>,
    /// Reused journal render buffer: the whole batch's entry lines,
    /// written with one syscall.
    journal_buf: String,
    batch: BatchScratch,
    resp_buf: Vec<Response>,
}

impl Daemon {
    /// Opens (or resumes) a daemon over the state directory at `root`.
    ///
    /// With prior state present, recovery runs unconditionally: newest
    /// valid snapshot → journal rewind → WAL-suffix replay. `clock`
    /// feeds only the latency histogram — it never influences a
    /// decision.
    pub fn open(
        root: &std::path::Path,
        config: DaemonConfig,
        clock: Box<dyn Clock>,
        registry: SharedRegistry,
    ) -> Result<(Self, Resumption), ServeError> {
        let dir = GatewayDir::open(root)?;
        if !dir.has_state() {
            let (mut wal, journal) = dir.create_genesis()?;
            wal.set_fsync_policy(config.fsync);
            let daemon = Daemon {
                config,
                dir,
                gateway: Gateway::new(config.gateway),
                wal,
                journal,
                journal_entries: 0,
                seen: BTreeSet::new(),
                clock,
                registry,
                wal_buf: String::new(),
                wal_offsets: Vec::new(),
                journal_buf: String::new(),
                batch: BatchScratch::default(),
                resp_buf: Vec::new(),
            };
            return Ok((daemon, Resumption::Fresh));
        }

        let payloads = dir.recover_wal()?;
        let (snapshot_seq, gateway, covered_records, journal_entries) =
            match dir.latest_valid_snapshot()? {
                Some((seq, snap, _skipped)) => {
                    if snap.config != config.gateway {
                        return Err(ServeError::ConfigMismatch {
                            stored: snap.config,
                            requested: config.gateway,
                        });
                    }
                    if snap.wal_records > payloads.len() as u64 {
                        return Err(ServeError::Persist(PersistError::Corrupt(format!(
                            "snapshot {seq} covers {} WAL records but only {} survive on disk",
                            snap.wal_records,
                            payloads.len()
                        ))));
                    }
                    let gateway = Gateway::from_snapshot(
                        config.gateway,
                        snap.origin_slot,
                        &snap.jobs,
                        snap.stats,
                    );
                    (Some(seq), gateway, snap.wal_records, snap.journal_entries)
                }
                None => (None, Gateway::new(config.gateway), 0, 0),
            };

        let journal = dir.rewind_journal(journal_entries)?;
        let mut wal = dir.reopen_wal(payloads.len() as u64)?;
        wal.set_fsync_policy(config.fsync);
        let mut daemon = Daemon {
            config,
            dir,
            gateway,
            wal,
            journal,
            journal_entries,
            seen: BTreeSet::new(),
            clock,
            registry,
            wal_buf: String::new(),
            wal_offsets: Vec::new(),
            journal_buf: String::new(),
            batch: BatchScratch::default(),
            resp_buf: Vec::new(),
        };

        // The duplicate-id guard must cover the entire submission
        // history. Records folded into the snapshot are scanned here;
        // the replay below re-inserts the suffix through the live path.
        let covered = usize::try_from(covered_records).unwrap_or(usize::MAX);
        for line in &payloads[..covered] {
            if let Ok(Some(Request::Submit { job })) = crate::proto::parse_request(line) {
                daemon.seen.insert(job.id);
            }
        }

        let replay = &payloads[covered..];
        for line in replay {
            let request = crate::proto::parse_request(line)
                .map_err(|e| {
                    ServeError::Persist(PersistError::Corrupt(format!(
                        "gateway WAL record failed to parse on replay: {e}"
                    )))
                })?
                .ok_or_else(|| {
                    ServeError::Persist(PersistError::Corrupt(
                        "gateway WAL holds an empty record".to_owned(),
                    ))
                })?;
            daemon.apply(&request, false)?;
        }
        daemon.publish_gauges();
        Ok((
            daemon,
            Resumption::Resumed {
                snapshot: snapshot_seq,
                replayed: replay.len() as u64,
            },
        ))
    }

    /// The daemon's configuration.
    pub fn config(&self) -> DaemonConfig {
        self.config
    }

    /// Cumulative gateway counters.
    pub fn stats(&self) -> GatewayStats {
        self.gateway.stats()
    }

    /// Journal entries written so far (excluding the header line).
    pub fn journal_entries(&self) -> u64 {
        self.journal_entries
    }

    /// WAL records accepted so far.
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// The shared metrics registry (hand to
    /// [`crate::metrics::spawn_exporter`]).
    pub fn registry(&self) -> SharedRegistry {
        std::sync::Arc::clone(&self.registry)
    }

    /// Handles one raw input line; `None` for blank lines.
    pub fn handle_line(&mut self, line: &str) -> Option<Response> {
        match crate::proto::parse_request(line) {
            Ok(None) => None,
            Ok(Some(request)) => Some(self.handle_request(&request)),
            Err(message) => Some(Response::Error { message }),
        }
    }

    /// Handles one parsed request: logs it, decides, journals, counts.
    pub fn handle_request(&mut self, request: &Request) -> Response {
        match self.apply(request, true) {
            Ok(response) => response,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        }
    }

    /// Handles a batch of parsed requests, pushing one response per
    /// request onto `out` in order. Runs of consecutive submissions go
    /// through the group-commit pipeline (one WAL append, one journal
    /// write, one metrics pass for the whole run); everything else is
    /// applied one at a time in place. Decision- and journal-equivalent
    /// to `handle_request` per request — batch boundaries are a runtime
    /// artifact, never replayed and never visible in the logs.
    pub fn handle_batch(&mut self, requests: &[Request], out: &mut Vec<Response>) {
        if !requests.is_empty() {
            let mut registry = metrics::lock(&self.registry);
            registry.observe(BATCH_SIZE, &[], requests.len() as f64);
        }
        out.reserve(requests.len());
        let mut i = 0;
        while i < requests.len() {
            if !matches!(requests[i], Request::Submit { .. }) {
                out.push(self.handle_request(&requests[i]));
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < requests.len() && matches!(requests[j], Request::Submit { .. }) {
                j += 1;
            }
            let run = &requests[i..j];
            if let Err(e) = self.apply_submit_run(run, true, out) {
                // An I/O failure fails the whole run: nothing was
                // decided (WAL error) or the journal is behind (write
                // error); either way every caller gets the same answer.
                let message = e.to_string();
                for _ in 0..run.len() {
                    out.push(Response::Error {
                        message: message.clone(),
                    });
                }
            }
            i = j;
        }
    }

    /// Publishes the serve loop's backlog (complete lines buffered
    /// behind the batch just cut).
    pub fn note_queue_depth(&self, depth: u64) {
        let mut registry = metrics::lock(&self.registry);
        registry.set_gauge(QUEUE_DEPTH, &[], depth as f64);
    }

    /// The one request-application path, shared by live serving
    /// (`live = true`: append to the WAL, maybe snapshot) and WAL
    /// replay (`live = false`: the record is already durable). Journal
    /// appends happen on both paths — that is what regenerates the
    /// entries a crash cut off.
    fn apply(&mut self, request: &Request, live: bool) -> Result<Response, ServeError> {
        match request {
            Request::Submit { .. } => {
                let mut out = std::mem::take(&mut self.resp_buf);
                out.clear();
                let result = self.apply_submit_run(std::slice::from_ref(request), live, &mut out);
                let response = out.pop();
                self.resp_buf = out;
                result?;
                Ok(response.expect("a run of one submission yields one response"))
            }
            Request::Withdraw { job, at_seconds } => {
                if live {
                    self.wal_buf.clear();
                    render_request_into(request, &mut self.wal_buf);
                    let record = std::mem::take(&mut self.wal_buf);
                    let appended = self.wal.append_payload(record.as_bytes());
                    self.wal_buf = record;
                    appended?;
                }
                let lapsed = self.gateway.withdraw(*job, *at_seconds);
                self.publish_gauges();
                Ok(Response::Withdrawn { job: *job, lapsed })
            }
            Request::Stats {} => Ok(Response::Stats {
                stats: self.gateway.stats(),
                active_guaranteed: self.gateway.active_guaranteed(),
            }),
            Request::Shutdown {} => Ok(Response::Bye {}),
        }
    }

    /// Applies a run of consecutive submissions through the batched
    /// pipeline: dedup → one group-committed WAL append → decide →
    /// one journal write → one metrics pass. Pushes one response per
    /// submission, in order. The WAL-before-decide discipline holds for
    /// the run as a whole: every record is on disk before the first
    /// outcome exists, so the journal can never lead the WAL.
    fn apply_submit_run(
        &mut self,
        run: &[Request],
        live: bool,
        out: &mut Vec<Response>,
    ) -> Result<(), ServeError> {
        fn submission(request: &Request) -> &JobSubmission {
            match request {
                Request::Submit { job } => job,
                _ => unreachable!("submit runs contain only submissions"),
            }
        }

        // The batch-entry timestamp: each decision's latency is measured
        // from here, so queueing behind earlier members of the batch is
        // charged to the decisions it delays.
        let t0 = self.clock.now_nanos();
        let mut scratch = std::mem::take(&mut self.batch);
        scratch.accepted.clear();
        scratch.decisions.clear();
        scratch.latencies.clear();

        // Duplicates (including duplicates *within* the run — the
        // inserts are sequential) are rejected before the WAL ever sees
        // the records, so the log never contains one and replay never
        // has to suppress one.
        for (i, request) in run.iter().enumerate() {
            if self.seen.insert(submission(request).id) {
                scratch.accepted.push(i);
            }
        }

        // Group commit: one render pass over the run into the reused
        // buffer, one write, one policy-dependent sync. On failure
        // nothing has been decided yet — roll the dedup guard back so
        // the submissions can be retried.
        if live && !scratch.accepted.is_empty() {
            self.wal_buf.clear();
            self.wal_offsets.clear();
            self.wal_offsets.push(0);
            for &i in &scratch.accepted {
                render_submit_into(submission(&run[i]), &mut self.wal_buf);
                self.wal_offsets.push(self.wal_buf.len());
            }
            let Daemon {
                wal,
                wal_buf,
                wal_offsets,
                ..
            } = self;
            let payloads = wal_offsets
                .windows(2)
                .map(|w| &wal_buf.as_bytes()[w[0]..w[1]]);
            if let Err(e) = wal.append_batch(payloads) {
                for &i in &scratch.accepted {
                    self.seen.remove(&submission(&run[i]).id);
                }
                self.batch = scratch;
                return Err(e.into());
            }
        }
        let base_seq = self.wal.records()
            - if live {
                scratch.accepted.len() as u64
            } else {
                0
            };

        for &i in &scratch.accepted {
            let decision = self.gateway.submit(submission(&run[i]));
            scratch
                .latencies
                .push(self.clock.now_nanos().saturating_sub(t0));
            scratch.decisions.push(decision);
        }

        // One journal write for the whole run. Rendering is pinned
        // byte-identical to serde's, so replay (which runs unbatched)
        // regenerates exactly these bytes.
        self.journal_buf.clear();
        for (k, &i) in scratch.accepted.iter().enumerate() {
            render_journal_entry_into(
                submission(&run[i]).arrival_seconds,
                &scratch.decisions[k],
                &mut self.journal_buf,
            );
            self.journal_buf.push('\n');
        }
        if let Err(e) = self.journal.write_all(self.journal_buf.as_bytes()) {
            self.batch = scratch;
            return Err(e.into());
        }
        self.journal_entries += scratch.accepted.len() as u64;

        self.record_run(&scratch, live);

        // Snapshot when the run crossed a cadence boundary (at run
        // length 1 this is exactly the old is-multiple-of check). The
        // snapshot lands at the run's end rather than mid-run — timing
        // is a runtime artifact, never replayed.
        if live && self.config.snapshot_every > 0 {
            let after = self.gateway.stats().submissions;
            let before = after - scratch.accepted.len() as u64;
            if before / self.config.snapshot_every != after / self.config.snapshot_every {
                if let Err(e) = self.snapshot_now() {
                    self.batch = scratch;
                    return Err(e.into());
                }
            }
        }

        let mut k = 0;
        for (i, request) in run.iter().enumerate() {
            let job = submission(request);
            if k < scratch.accepted.len() && scratch.accepted[k] == i {
                let decision = scratch.decisions[k];
                k += 1;
                out.push(Response::Decision {
                    job: job.id,
                    seq: base_seq + k as u64,
                    admitted: matches!(decision, DecisionRecord::Admit { .. }),
                    decision,
                });
            } else {
                out.push(Response::Error {
                    message: format!("job id {} was already submitted", job.id),
                });
            }
        }
        self.batch = scratch;
        Ok(())
    }

    /// One metrics pass for a whole run: aggregated counter bumps, one
    /// latency sample per decision (live only — replayed decisions
    /// carry replay timing, not serving latency), one gauge publish.
    fn record_run(&mut self, scratch: &BatchScratch, live: bool) {
        if scratch.decisions.is_empty() {
            return;
        }
        let mut admits = 0u64;
        let mut declines = [0u64; 3]; // candidate_infeasible, would_displace, unexplained
        for decision in &scratch.decisions {
            match decision {
                DecisionRecord::Admit { .. } => admits += 1,
                DecisionRecord::Decline { reason, .. } => match reason {
                    DeclineReason::CandidateInfeasible { .. } => declines[0] += 1,
                    DeclineReason::WouldDisplace { .. } => declines[1] += 1,
                    DeclineReason::Unexplained => declines[2] += 1,
                },
                other @ (DecisionRecord::Resize { .. }
                | DecisionRecord::Preempt { .. }
                | DecisionRecord::Migrate { .. }
                | DecisionRecord::Pause { .. }) => {
                    debug_assert!(false, "gateway submissions never yield {other:?}");
                }
            }
        }
        let mut registry = metrics::lock(&self.registry);
        if admits > 0 {
            registry.inc(DECISIONS_TOTAL, &[("kind", "admit")], admits as f64);
        }
        let declined: u64 = declines.iter().sum();
        if declined > 0 {
            registry.inc(DECISIONS_TOTAL, &[("kind", "decline")], declined as f64);
        }
        for (count, label) in
            declines
                .iter()
                .zip(["candidate_infeasible", "would_displace", "unexplained"])
        {
            if *count > 0 {
                registry.inc(DECLINES_TOTAL, &[("reason", label)], *count as f64);
            }
        }
        if live {
            for &nanos in &scratch.latencies {
                registry.observe(DECISION_LATENCY, &[], nanos as f64 / 1e9);
            }
        }
        drop(registry);
        self.publish_gauges();
    }

    fn publish_gauges(&mut self) {
        let active = self.gateway.active_guaranteed() as f64;
        let booked = self.gateway.booked_fraction(BOOKED_HORIZON_SLOTS);
        let mut registry = metrics::lock(&self.registry);
        registry.set_gauge(ACTIVE_GUARANTEED, &[], active);
        registry.set_gauge(BOOKED_FRACTION, &[], booked);
    }

    /// Writes a snapshot of the current state as the next file in
    /// sequence; returns its sequence number.
    pub fn snapshot_now(&mut self) -> Result<u64, PersistError> {
        self.journal.flush()?;
        let (origin_slot, jobs) = self.gateway.snapshot_jobs();
        let snap = GatewaySnapshot {
            version: PERSIST_VERSION,
            wal_records: self.wal.records(),
            journal_entries: self.journal_entries,
            config: self.config.gateway,
            origin_slot,
            stats: self.gateway.stats(),
            jobs,
        };
        self.dir.write_next_snapshot(&snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::gateway_registry;
    use elasticflow_perfmodel::DnnModel;
    use elasticflow_telemetry::TickClock;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ef-daemon-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> DaemonConfig {
        DaemonConfig {
            gateway: GatewayConfig {
                servers: 1,
                gpus_per_server: 8,
                slot_seconds: 60.0,
            },
            snapshot_every: 5,
            fsync: FsyncPolicy::Never,
        }
    }

    fn open(root: &std::path::Path) -> (Daemon, Resumption) {
        Daemon::open(
            root,
            config(),
            Box::new(TickClock::new(250)),
            gateway_registry(),
        )
        .expect("daemon opens")
    }

    fn submit_line(id: u64, arrival: f64, deadline: Option<f64>) -> String {
        use elasticflow_cluster::ClusterSpec;
        use elasticflow_perfmodel::{Interconnect, ScalingCurve};
        let net = Interconnect::from_spec(&ClusterSpec::with_servers(1, 8));
        let curve = ScalingCurve::build_with_max(DnnModel::ResNet50, 128, &net, 8);
        let tput = curve.iters_per_sec(1).expect("1 GPU is on the curve");
        let req = Request::Submit {
            job: JobSubmission {
                id,
                model: DnnModel::ResNet50,
                global_batch: 128,
                // 30 minutes of single-GPU work: a handful of these
                // saturate the 8-GPU test cluster inside one window.
                iterations: tput * 1_800.0,
                arrival_seconds: arrival,
                deadline_seconds: deadline,
            },
        };
        serde_json::to_string(&req).unwrap()
    }

    #[test]
    fn duplicate_ids_are_rejected_without_touching_the_logs() {
        let root = tmp("dup");
        let (mut daemon, _) = open(&root);
        let first = daemon
            .handle_line(&submit_line(1, 0.0, Some(1_800.0)))
            .unwrap();
        assert!(matches!(first, Response::Decision { .. }));
        let dup = daemon.handle_line(&submit_line(1, 5.0, None)).unwrap();
        assert!(matches!(dup, Response::Error { .. }));
        assert_eq!(daemon.wal_records(), 1);
        assert_eq!(daemon.journal_entries(), 1);
    }

    #[test]
    fn decisions_feed_the_metrics_surface() {
        let root = tmp("metrics");
        let (mut daemon, _) = open(&root);
        for i in 0..30 {
            daemon.handle_line(&submit_line(i, 0.0, Some(1_800.0)));
        }
        let registry = daemon.registry();
        let guard = metrics::lock(&registry);
        let admits = guard.counter_value(DECISIONS_TOTAL, &[("kind", "admit")]);
        let declines = guard.counter_value(DECISIONS_TOTAL, &[("kind", "decline")]);
        assert_eq!(admits + declines, 30.0);
        assert!(declines > 0.0, "8 GPUs cannot host 30 concurrent jobs");
        let histogram = guard
            .histogram(DECISION_LATENCY, &[])
            .expect("latency histogram populated");
        assert_eq!(histogram.count(), 30);
        assert_eq!(
            guard.gauge_value(ACTIVE_GUARANTEED, &[]),
            Some(f64::from(daemon.stats().admitted as u32))
        );
    }

    #[test]
    fn resume_without_snapshot_replays_the_whole_wal() {
        let root = tmp("genesis-replay");
        let journal_after = {
            let (mut daemon, resumption) = open(&root);
            assert_eq!(resumption, Resumption::Fresh);
            for i in 0..4 {
                daemon.handle_line(&submit_line(i, i as f64 * 10.0, Some(3_600.0)));
            }
            std::fs::read(daemon.dir.journal_path()).unwrap()
        };
        let (daemon, resumption) = open(&root);
        assert_eq!(
            resumption,
            Resumption::Resumed {
                snapshot: None,
                replayed: 4
            }
        );
        assert_eq!(daemon.stats().submissions, 4);
        assert_eq!(
            std::fs::read(daemon.dir.journal_path()).unwrap(),
            journal_after
        );
    }

    #[test]
    fn resume_from_snapshot_replays_only_the_suffix() {
        let root = tmp("snapshot-replay");
        {
            let (mut daemon, _) = open(&root);
            // snapshot_every = 5 → a snapshot lands at submission 5.
            for i in 0..8 {
                daemon.handle_line(&submit_line(i, i as f64 * 20.0, Some(7_200.0)));
            }
        }
        let (mut daemon, resumption) = open(&root);
        assert_eq!(
            resumption,
            Resumption::Resumed {
                snapshot: Some(1),
                replayed: 3
            }
        );
        assert_eq!(daemon.stats().submissions, 8);
        // History replayed through the dedup guard: old ids still refuse.
        let dup = daemon.handle_line(&submit_line(2, 500.0, None)).unwrap();
        assert!(matches!(dup, Response::Error { .. }));
    }

    #[test]
    fn batched_handling_leaves_byte_identical_logs_and_responses() {
        let requests: Vec<Request> = (0..40)
            .map(|i| {
                let line = submit_line(
                    i,
                    i as f64 * 15.0,
                    if i % 3 == 0 {
                        None
                    } else {
                        Some(i as f64 * 15.0 + 1_800.0)
                    },
                );
                crate::proto::parse_request(&line).unwrap().unwrap()
            })
            .collect();

        let seq_root = tmp("batch-seq");
        let (mut sequential, _) = open(&seq_root);
        let expected: Vec<Response> = requests
            .iter()
            .map(|r| sequential.handle_request(r))
            .collect();
        let seq_wal = std::fs::read(sequential.dir.wal_path()).unwrap();
        let seq_journal = std::fs::read(sequential.dir.journal_path()).unwrap();

        for chunk_size in [2usize, 7, 40] {
            let root = tmp(&format!("batch-{chunk_size}"));
            let (mut daemon, _) = open(&root);
            let mut got = Vec::new();
            for chunk in requests.chunks(chunk_size) {
                daemon.handle_batch(chunk, &mut got);
            }
            assert_eq!(got, expected, "responses at chunk size {chunk_size}");
            assert_eq!(
                std::fs::read(daemon.dir.wal_path()).unwrap(),
                seq_wal,
                "WAL bytes at chunk size {chunk_size}"
            );
            assert_eq!(
                std::fs::read(daemon.dir.journal_path()).unwrap(),
                seq_journal,
                "journal bytes at chunk size {chunk_size}"
            );
        }
    }

    #[test]
    fn duplicates_inside_one_batch_are_rejected_in_order() {
        let root = tmp("batch-dup");
        let (mut daemon, _) = open(&root);
        let requests: Vec<Request> = [
            submit_line(1, 0.0, Some(1_800.0)),
            submit_line(1, 1.0, None),
            submit_line(2, 2.0, Some(3_600.0)),
        ]
        .iter()
        .map(|l| crate::proto::parse_request(l).unwrap().unwrap())
        .collect();
        let mut out = Vec::new();
        daemon.handle_batch(&requests, &mut out);
        assert!(matches!(out[0], Response::Decision { job: 1, .. }));
        assert!(matches!(out[1], Response::Error { .. }));
        assert!(matches!(out[2], Response::Decision { job: 2, .. }));
        assert_eq!(daemon.wal_records(), 2);
        assert_eq!(daemon.journal_entries(), 2);
    }

    #[test]
    fn resume_under_a_different_cluster_is_refused() {
        let root = tmp("config-mismatch");
        {
            let (mut daemon, _) = open(&root);
            for i in 0..6 {
                daemon.handle_line(&submit_line(i, 0.0, Some(3_600.0)));
            }
        }
        let mut other = config();
        other.gateway.servers = 2;
        let err = Daemon::open(
            &root,
            other,
            Box::new(TickClock::new(250)),
            gateway_registry(),
        )
        .map(|(d, r)| (d.config(), r))
        .expect_err("mismatched config refused");
        assert!(matches!(err, ServeError::ConfigMismatch { .. }));
    }
}
