//! The gateway's on-disk state: submission log, decision journal,
//! snapshots.
//!
//! Layout under one [`GatewayDir`] root:
//!
//! ```text
//! state/
//!   gateway.wal               append-only request log (`EFGW` framing)
//!   decisions.jsonl           decision journal (explain-compatible JSONL)
//!   snapshot-000001.efgs      sequenced gateway snapshots (`EFGS` framing)
//! ```
//!
//! The WAL is the *input* history — every accepted request line, framed
//! and checksummed via [`elasticflow_persist::records`]. Unlike the
//! simulator WAL it is never truncated on resume: the suffix past the
//! snapshot is replayed through the (deterministic) gateway to
//! regenerate the exact decisions the crashed instance produced. The
//! decision journal *is* truncated back to the snapshot's entry count
//! first, so the regenerated entries land where the lost ones were and
//! the recovered file converges byte-identically to an uninterrupted
//! run's.
//!
//! Snapshots use the same atomic temp-file + rename and newest-valid-wins
//! recovery as [`elasticflow_persist::StateDir`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use elasticflow_persist::frame::{
    check_header, decode_frame, encode_frame, encode_header, FrameRead, HEADER_LEN, PERSIST_VERSION,
};
use elasticflow_persist::records::{self, LogKind, RecordLog};
use elasticflow_persist::PersistError;
use elasticflow_sched::{CapacityShortfall, DecisionRecord, DeclineReason};
use elasticflow_telemetry::{JournalEntry, JOURNAL_MAGIC, JOURNAL_VERSION};
use serde::{Deserialize, Serialize};

use crate::gateway::{GatewayConfig, GatewayStats, SnapshotJob};
use crate::proto::push_f64;

/// Magic bytes of a gateway snapshot file.
pub const GATEWAY_SNAPSHOT_MAGIC: &[u8; 4] = b"EFGS";

/// The [`LogKind`] of the gateway submission log.
pub const GATEWAY_WAL_KIND: LogKind = LogKind {
    magic: b"EFGW",
    magic_name: "EFGW",
    record_name: "gateway",
    long_name: "gateway submission log",
};

/// One gateway snapshot's payload: enough to rebuild the decision core
/// and to know how much of the WAL and journal it already covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewaySnapshot {
    /// On-disk format version ([`PERSIST_VERSION`] at write time).
    pub version: u32,
    /// WAL records already folded into this snapshot; recovery replays
    /// only the records after them.
    pub wal_records: u64,
    /// Journal entries (excluding the header line) this snapshot is
    /// consistent with; recovery truncates the journal back to them.
    pub journal_entries: u64,
    /// The gateway configuration the state was produced under (a resume
    /// under a different configuration is refused).
    pub config: GatewayConfig,
    /// Absolute origin slot of the committed plan.
    pub origin_slot: u64,
    /// Cumulative counters.
    pub stats: GatewayStats,
    /// Every committed job, with origin-relative windows.
    pub jobs: Vec<SnapshotJob>,
}

/// Serializes a gateway snapshot (header + one checksummed frame).
pub fn encode_snapshot(snap: &GatewaySnapshot) -> Result<Vec<u8>, PersistError> {
    let payload = serde_json::to_string(snap)?;
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len() + 16);
    bytes.extend_from_slice(&encode_header(GATEWAY_SNAPSHOT_MAGIC, PERSIST_VERSION));
    encode_frame(&mut bytes, payload.as_bytes());
    Ok(bytes)
}

/// Parses and validates gateway snapshot bytes.
pub fn decode_snapshot(bytes: &[u8]) -> Result<GatewaySnapshot, PersistError> {
    check_header(bytes, GATEWAY_SNAPSHOT_MAGIC, "EFGS")?;
    let frame = decode_frame(bytes, HEADER_LEN)?;
    let FrameRead::Complete { payload, next } = frame else {
        return Err(PersistError::Corrupt(
            "gateway snapshot file is truncated mid-frame".to_owned(),
        ));
    };
    if next != bytes.len() {
        return Err(PersistError::Corrupt(format!(
            "gateway snapshot file has {} trailing bytes after its frame",
            bytes.len() - next
        )));
    }
    let text = std::str::from_utf8(payload).map_err(|_| {
        PersistError::Corrupt("gateway snapshot payload is not valid UTF-8".to_owned())
    })?;
    let snap: GatewaySnapshot = serde_json::from_str(text)?;
    if snap.version == 0 || snap.version > PERSIST_VERSION {
        return Err(PersistError::UnknownVersion {
            found: snap.version,
            supported: PERSIST_VERSION,
        });
    }
    Ok(snap)
}

/// The journal's header line, byte-identical to the one
/// [`elasticflow_telemetry::DecisionJournal::to_jsonl`] writes — the
/// file stays loadable by `experiments -- explain --journal`.
pub fn journal_header() -> String {
    format!("{{\"journal\":\"{JOURNAL_MAGIC}\",\"version\":{JOURNAL_VERSION}}}")
}

/// Appends one journal entry line (no trailing newline) to `out`,
/// byte-for-byte what `serde_json::to_string(&JournalEntry { t,
/// decision })` produces — without building a `Value` tree. The admit
/// and decline shapes the gateway emits are rendered by hand; the
/// simulator-only variants (resize, preempt, migrate, pause) fall back
/// to serde, keeping the function total. Equality with serde is pinned
/// by tests over every shape.
pub fn render_journal_entry_into(t: f64, decision: &DecisionRecord, out: &mut String) {
    use std::fmt::Write;

    fn push_shortfall(out: &mut String, s: &CapacityShortfall) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{{\"window_slots\":{},\"demand_gpu_slots\":",
            s.window_slots
        );
        push_f64(out, s.demand_gpu_slots);
        out.push_str(",\"free_gpu_slots\":");
        push_f64(out, s.free_gpu_slots);
        out.push('}');
    }

    if !matches!(
        decision,
        DecisionRecord::Admit { .. } | DecisionRecord::Decline { .. }
    ) {
        // Simulator-only variants: not on the gateway's hot path, so a
        // serde round through the `Value` tree is fine.
        if let Ok(line) = serde_json::to_string(&JournalEntry {
            t,
            decision: *decision,
        }) {
            out.push_str(&line);
        }
        return;
    }

    out.push_str("{\"t\":");
    push_f64(out, t);
    out.push_str(",\"decision\":");
    match decision {
        DecisionRecord::Admit { job } => {
            let _ = write!(out, "{{\"Admit\":{{\"job\":{}}}}}", job.raw());
        }
        DecisionRecord::Decline { job, reason } => {
            let _ = write!(out, "{{\"Decline\":{{\"job\":{},\"reason\":", job.raw());
            match reason {
                DeclineReason::CandidateInfeasible { shortfall } => {
                    out.push_str("{\"CandidateInfeasible\":{\"shortfall\":");
                    push_shortfall(out, shortfall);
                    out.push_str("}}");
                }
                DeclineReason::WouldDisplace {
                    blocking_job,
                    shortfall,
                } => {
                    let _ = write!(
                        out,
                        "{{\"WouldDisplace\":{{\"blocking_job\":{},\"shortfall\":",
                        blocking_job.raw()
                    );
                    push_shortfall(out, shortfall);
                    out.push_str("}}");
                }
                DeclineReason::Unexplained => out.push_str("\"Unexplained\""),
            }
            out.push_str("}}");
        }
        DecisionRecord::Resize { .. }
        | DecisionRecord::Preempt { .. }
        | DecisionRecord::Migrate { .. }
        | DecisionRecord::Pause { .. } => unreachable!("handled above"),
    }
    out.push('}');
}

/// A gateway persistence root directory.
#[derive(Debug, Clone)]
pub struct GatewayDir {
    root: PathBuf,
}

impl GatewayDir {
    /// Opens (creating if needed) the state directory at `root`.
    pub fn open<P: AsRef<Path>>(root: P) -> Result<Self, PersistError> {
        std::fs::create_dir_all(&root)?;
        Ok(GatewayDir {
            root: root.as_ref().to_path_buf(),
        })
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the submission log.
    pub fn wal_path(&self) -> PathBuf {
        self.root.join("gateway.wal")
    }

    /// Path of the decision journal.
    pub fn journal_path(&self) -> PathBuf {
        self.root.join("decisions.jsonl")
    }

    /// Path of snapshot number `seq`.
    pub fn snapshot_path(&self, seq: u64) -> PathBuf {
        self.root.join(format!("snapshot-{seq:06}.efgs"))
    }

    /// `true` when the directory holds prior gateway state.
    pub fn has_state(&self) -> bool {
        self.wal_path().exists()
    }

    /// Creates a fresh WAL and a journal holding only its header line.
    /// Any existing state is truncated away.
    pub fn create_genesis(&self) -> Result<(RecordLog, File), PersistError> {
        let wal = RecordLog::create(GATEWAY_WAL_KIND, self.wal_path())?;
        let mut journal = File::create(self.journal_path())?;
        journal.write_all(journal_header().as_bytes())?;
        journal.write_all(b"\n")?;
        journal.flush()?;
        Ok((wal, journal))
    }

    /// Reads the submission log, truncating a torn final frame (the only
    /// crash artifact framing allows). Returns the clean payload lines.
    pub fn recover_wal(&self) -> Result<Vec<String>, PersistError> {
        Ok(records::recover_log(GATEWAY_WAL_KIND, self.wal_path())?.payloads)
    }

    /// Re-opens the WAL for appending after all `records` already on
    /// disk (the full recovered history — gateway WALs keep every
    /// record; only the journal is rewound on resume).
    pub fn reopen_wal(&self, records: u64) -> Result<RecordLog, PersistError> {
        RecordLog::open_truncated(GATEWAY_WAL_KIND, self.wal_path(), records)
    }

    /// Truncates the decision journal back to its header plus the first
    /// `entries` entry lines, and re-opens it for appending. A partial
    /// final line (crash mid-append) past the kept prefix is discarded
    /// with it.
    pub fn rewind_journal(&self, entries: u64) -> Result<File, PersistError> {
        let path = self.journal_path();
        let mut text = String::new();
        File::open(&path)?.read_to_string(&mut text)?;
        let mut keep_bytes: u64 = 0;
        let mut complete_lines: u64 = 0; // header + entries seen so far
        let mut start = 0usize;
        while let Some(nl) = text[start..].find('\n') {
            start += nl + 1;
            complete_lines += 1;
            keep_bytes = start as u64;
            if complete_lines == entries + 1 {
                break;
            }
        }
        if complete_lines < entries + 1 {
            return Err(PersistError::Corrupt(format!(
                "decision journal holds {} complete lines but the snapshot requires {}",
                complete_lines,
                entries + 1
            )));
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(keep_bytes)?;
        file.seek(SeekFrom::End(0))?;
        Ok(file)
    }

    /// Every snapshot sequence number present on disk, ascending.
    pub fn snapshot_seqs(&self) -> Result<Vec<u64>, PersistError> {
        let mut seqs = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix("snapshot-")
                .and_then(|s| s.strip_suffix(".efgs"))
            else {
                continue;
            };
            if let Ok(seq) = stem.parse::<u64>() {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Writes `snap` as the next snapshot in sequence (atomically, via a
    /// temporary file renamed into place).
    pub fn write_next_snapshot(&self, snap: &GatewaySnapshot) -> Result<u64, PersistError> {
        let seq = self.snapshot_seqs()?.last().copied().unwrap_or(0) + 1;
        let bytes = encode_snapshot(snap)?;
        let tmp_path = self.root.join(format!("snapshot-{seq:06}.tmp"));
        std::fs::write(&tmp_path, &bytes)?;
        std::fs::rename(&tmp_path, self.snapshot_path(seq))?;
        Ok(seq)
    }

    /// Loads the newest snapshot that passes full validation, skipping
    /// corrupt ones; `Ok(None)` when no snapshot exists.
    #[allow(clippy::type_complexity)]
    pub fn latest_valid_snapshot(
        &self,
    ) -> Result<Option<(u64, GatewaySnapshot, Vec<(u64, String)>)>, PersistError> {
        let mut skipped = Vec::new();
        for seq in self.snapshot_seqs()?.into_iter().rev() {
            let read = std::fs::read(self.snapshot_path(seq))
                .map_err(PersistError::from)
                .and_then(|bytes| decode_snapshot(&bytes));
            match read {
                Ok(snap) => return Ok(Some((seq, snap, skipped))),
                Err(e) => skipped.push((seq, e.to_string())),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_telemetry::DecisionJournal;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ef-serve-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn snapshot(jobs: Vec<SnapshotJob>) -> GatewaySnapshot {
        GatewaySnapshot {
            version: PERSIST_VERSION,
            wal_records: 3,
            journal_entries: 2,
            config: GatewayConfig::default(),
            origin_slot: 7,
            stats: GatewayStats {
                submissions: 3,
                admitted: 2,
                declined: 1,
                ..GatewayStats::default()
            },
            jobs,
        }
    }

    #[test]
    fn header_line_matches_the_telemetry_journal_format() {
        let reference = DecisionJournal::new().to_jsonl();
        assert_eq!(format!("{}\n", journal_header()), reference);
    }

    #[test]
    fn snapshot_encode_decode_round_trips() {
        let snap = snapshot(vec![SnapshotJob {
            id: 4,
            model: elasticflow_perfmodel::DnnModel::Bert,
            global_batch: 128,
            remaining_iterations: 512.5,
            deadline_slot: 40,
        }]);
        let bytes = encode_snapshot(&snap).unwrap();
        assert_eq!(decode_snapshot(&bytes).unwrap(), snap);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_the_previous_one() {
        let dir = GatewayDir::open(tmp("fallback")).unwrap();
        let first = snapshot(vec![]);
        let mut second = snapshot(vec![]);
        second.origin_slot = 9;
        dir.write_next_snapshot(&first).unwrap();
        let seq2 = dir.write_next_snapshot(&second).unwrap();
        // Corrupt the newest file.
        let path = dir.snapshot_path(seq2);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (seq, snap, skipped) = dir.latest_valid_snapshot().unwrap().expect("snapshot");
        assert_eq!(seq, 1);
        assert_eq!(snap, first);
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].0, seq2);
    }

    #[test]
    fn rewind_journal_keeps_exactly_the_prefix_and_drops_torn_tails() {
        let dir = GatewayDir::open(tmp("rewind")).unwrap();
        let (_wal, mut journal) = dir.create_genesis().unwrap();
        for i in 0..4 {
            journal
                .write_all(format!("{{\"t\":{i}.0,\"entry\":{i}}}\n").as_bytes())
                .unwrap();
        }
        // Torn tail: a crash mid-append leaves a partial line.
        journal.write_all(b"{\"t\":4.0,\"ent").unwrap();
        drop(journal);
        let mut reopened = dir.rewind_journal(2).unwrap();
        reopened.write_all(b"{\"t\":2.0,\"entry\":2}\n").unwrap();
        drop(reopened);
        let text = std::fs::read_to_string(dir.journal_path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 entries
        assert_eq!(lines[0], journal_header());
        assert_eq!(lines[3], "{\"t\":2.0,\"entry\":2}");
        // Asking for more entries than exist is corruption, not silence.
        assert!(matches!(
            dir.rewind_journal(10),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn journal_entry_renderer_matches_serde_byte_for_byte() {
        use elasticflow_sched::PauseCause;
        use elasticflow_trace::JobId;

        let shortfall = CapacityShortfall {
            window_slots: u64::MAX,
            demand_gpu_slots: 123.456789,
            free_gpu_slots: 0.25,
        };
        let cases = [
            (0.0, DecisionRecord::Admit { job: JobId::new(0) }),
            (
                3600.5,
                DecisionRecord::Admit {
                    job: JobId::new(u64::MAX),
                },
            ),
            (
                1e-9,
                DecisionRecord::Decline {
                    job: JobId::new(7),
                    reason: DeclineReason::CandidateInfeasible { shortfall },
                },
            ),
            (
                9.87e12,
                DecisionRecord::Decline {
                    job: JobId::new(8),
                    reason: DeclineReason::WouldDisplace {
                        blocking_job: JobId::new(3),
                        shortfall,
                    },
                },
            ),
            (
                42.0,
                DecisionRecord::Decline {
                    job: JobId::new(9),
                    reason: DeclineReason::Unexplained,
                },
            ),
            // Simulator-only shapes exercise the serde fallback.
            (
                1.5,
                DecisionRecord::Resize {
                    job: JobId::new(1),
                    from: 2,
                    to: 4,
                },
            ),
            (
                2.5,
                DecisionRecord::Pause {
                    job: JobId::new(2),
                    seconds: 35.0,
                    cause: PauseCause::Recovery,
                },
            ),
        ];
        let mut out = String::new();
        for (t, decision) in cases {
            out.clear();
            render_journal_entry_into(t, &decision, &mut out);
            let reference = serde_json::to_string(&JournalEntry { t, decision }).unwrap();
            assert_eq!(out, reference, "shape {decision:?}");
        }
    }

    #[test]
    fn wal_survives_a_torn_tail() {
        let dir = GatewayDir::open(tmp("torn-wal")).unwrap();
        let (mut wal, _journal) = dir.create_genesis().unwrap();
        wal.append_payload(b"{\"req\":1}").unwrap();
        wal.append_payload(b"{\"req\":2}").unwrap();
        drop(wal);
        // Simulate a crash mid-append.
        let mut bytes = std::fs::read(dir.wal_path()).unwrap();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1]);
        std::fs::write(dir.wal_path(), &bytes).unwrap();
        let payloads = dir.recover_wal().unwrap();
        assert_eq!(payloads, vec!["{\"req\":1}", "{\"req\":2}"]);
        let mut wal = dir.reopen_wal(2).unwrap();
        wal.append_payload(b"{\"req\":3}").unwrap();
        assert_eq!(dir.recover_wal().unwrap().len(), 3);
    }
}
