//! Shared metrics state and the Prometheus scrape endpoint.
//!
//! The daemon's request loop and the exporter thread share one
//! [`MetricsRegistry`] behind a mutex. The exporter is a deliberately
//! minimal HTTP/1.1 responder: every connection gets one
//! `text/plain; version=0.0.4` body rendered by
//! [`elasticflow_telemetry::prometheus::render`], whatever the request
//! line says — exactly enough for `curl` and a Prometheus scraper, with
//! no routing, keep-alive, or TLS to maintain.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use elasticflow_telemetry::{describe_decision_latency, prometheus, MetricsRegistry};

/// Counter: decisions taken, labelled by `kind`
/// (`admit`/`decline`/`resize`/…).
pub const DECISIONS_TOTAL: &str = "ef_gateway_decisions_total";

/// Counter: declines, labelled by structured `reason`.
pub const DECLINES_TOTAL: &str = "ef_gateway_declines_total";

/// Gauge: jobs currently holding a deadline guarantee.
pub const ACTIVE_GUARANTEED: &str = "ef_gateway_active_guaranteed";

/// Gauge: mean booked fraction of the cluster over the next
/// [`BOOKED_HORIZON_SLOTS`] slots.
pub const BOOKED_FRACTION: &str = "ef_gateway_booked_fraction";

/// Horizon (slots) of the [`BOOKED_FRACTION`] gauge.
pub const BOOKED_HORIZON_SLOTS: usize = 60;

/// Histogram: requests drained per serve-loop batch.
pub const BATCH_SIZE: &str = "ef_gateway_batch_size";

/// Buckets of the [`BATCH_SIZE`] histogram (powers of two up to the
/// largest batch a sane `--batch` setting produces).
pub const BATCH_SIZE_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Gauge: complete lines already buffered (queued behind the batch
/// being served) when the serve loop last cut a batch.
pub const QUEUE_DEPTH: &str = "ef_gateway_queue_depth";

/// The registry handle shared between the daemon and the exporter.
pub type SharedRegistry = Arc<Mutex<MetricsRegistry>>;

/// A fresh shared registry with every gateway metric described (so the
/// scrape surface is complete from the first render, before any
/// samples).
pub fn gateway_registry() -> SharedRegistry {
    let mut registry = MetricsRegistry::new();
    describe_decision_latency(&mut registry);
    registry.describe_counter(DECISIONS_TOTAL, "Gateway decisions taken, by kind");
    registry.describe_counter(DECLINES_TOTAL, "Gateway declines, by structured reason");
    registry.describe_gauge(
        ACTIVE_GUARANTEED,
        "Jobs currently holding a deadline guarantee",
    );
    registry.describe_gauge(
        BOOKED_FRACTION,
        "Mean booked fraction of the cluster over the gauge horizon",
    );
    registry.describe_histogram(
        BATCH_SIZE,
        "Requests drained per serve-loop batch",
        BATCH_SIZE_BUCKETS,
    );
    registry.describe_gauge(
        QUEUE_DEPTH,
        "Complete lines buffered behind the batch being served",
    );
    Arc::new(Mutex::new(registry))
}

/// Locks the registry, recovering from a poisoned mutex (a panicked
/// exporter connection must not take the daemon down with it).
pub fn lock(registry: &SharedRegistry) -> MutexGuard<'_, MetricsRegistry> {
    registry.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders the current scrape body.
pub fn render(registry: &SharedRegistry) -> String {
    prometheus::render(&lock(registry))
}

/// Binds `addr` and serves scrapes on a background thread until the
/// process exits. Returns the bound address (useful with port 0) and the
/// thread handle.
pub fn spawn_exporter(
    registry: SharedRegistry,
    addr: &str,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // Drain whatever request arrived; the response is the same
            // for every path.
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let body = prometheus::render(&registry.lock().unwrap_or_else(PoisonError::into_inner));
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            );
            let _ = stream.write_all(head.as_bytes());
            let _ = stream.write_all(body.as_bytes());
        }
    });
    Ok((bound, handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use elasticflow_telemetry::DECISION_LATENCY;

    #[test]
    fn gateway_registry_describes_the_full_surface_up_front() {
        let registry = gateway_registry();
        let body = render(&registry);
        for name in [
            DECISION_LATENCY,
            DECISIONS_TOTAL,
            DECLINES_TOTAL,
            ACTIVE_GUARANTEED,
            BOOKED_FRACTION,
            BATCH_SIZE,
            QUEUE_DEPTH,
        ] {
            assert!(body.contains(&format!("# HELP {name} ")), "missing {name}");
        }
        assert!(prometheus::parse(&body).is_ok());
    }

    #[test]
    fn exporter_answers_a_raw_tcp_scrape() {
        let registry = gateway_registry();
        lock(&registry).inc(DECISIONS_TOTAL, &[("kind", "admit")], 3.0);
        let (addr, _handle) = spawn_exporter(Arc::clone(&registry), "127.0.0.1:0").unwrap();
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"));
        let body = response
            .split("\r\n\r\n")
            .nth(1)
            .expect("response has a body");
        assert!(body.contains("ef_gateway_decisions_total{kind=\"admit\"} 3"));
        assert!(prometheus::parse(body).is_ok());
    }
}
