//! Crash/recovery integration tests for the gateway daemon.
//!
//! The contract under test: kill the daemon at *any* offset in the
//! request stream, resume, finish the stream — and both durable files
//! (`decisions.jsonl`, `gateway.wal`) end up byte-identical to the
//! files an uninterrupted run produces. The in-process tests exercise
//! arbitrary kill offsets and torn-tail corruption; the `#[cfg(unix)]`
//! test crashes the real binary with `--die-after` (exit 17, no
//! unwinding) and resumes it with a full idempotent re-feed.

use std::path::{Path, PathBuf};

use elasticflow_serve::{
    gateway_registry, loadgen_stream, Daemon, DaemonConfig, FsyncPolicy, GatewayConfig,
    LoadgenConfig, Request,
};
use elasticflow_telemetry::TickClock;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ef-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn daemon_config() -> DaemonConfig {
    DaemonConfig {
        gateway: GatewayConfig {
            servers: 2,
            gpus_per_server: 8,
            slot_seconds: 60.0,
        },
        snapshot_every: 16,
        fsync: FsyncPolicy::Never,
    }
}

/// A contended request stream on the 16-GPU test cluster: admissions,
/// declines, and best-effort submissions all occur.
fn request_lines(arrivals: usize) -> Vec<String> {
    let cfg = LoadgenConfig {
        arrivals,
        servers: 2,
        gpus_per_server: 8,
        mean_interarrival: 20.0,
        ..LoadgenConfig::default()
    };
    loadgen_stream(&cfg)
        .iter()
        .map(|r| serde_json::to_string(r).expect("requests serialize"))
        .collect()
}

fn open(root: &Path) -> Daemon {
    let (daemon, _resumption) = Daemon::open(
        root,
        daemon_config(),
        Box::new(TickClock::new(500)),
        gateway_registry(),
    )
    .expect("daemon opens");
    daemon
}

fn feed(daemon: &mut Daemon, lines: &[String]) {
    for line in lines {
        daemon.handle_line(line);
    }
}

fn durable_files(root: &Path) -> (Vec<u8>, Vec<u8>) {
    let journal = std::fs::read(root.join("decisions.jsonl")).expect("journal exists");
    let wal = std::fs::read(root.join("gateway.wal")).expect("wal exists");
    (journal, wal)
}

/// The uninterrupted run every recovery scenario must converge to.
fn reference_run(lines: &[String]) -> (Vec<u8>, Vec<u8>, elasticflow_serve::GatewayStats) {
    let root = tmp("reference");
    let mut daemon = open(&root);
    feed(&mut daemon, lines);
    let stats = daemon.stats();
    drop(daemon);
    let (journal, wal) = durable_files(&root);
    (journal, wal, stats)
}

#[test]
fn kill_at_arbitrary_offsets_recovers_bit_identically() {
    let lines = request_lines(120);
    let (ref_journal, ref_wal, ref_stats) = reference_run(&lines);
    assert!(ref_stats.declined > 0, "the stream must contend for GPUs");

    // Offsets straddle snapshot boundaries (every 16 submissions): just
    // after genesis, mid-epoch, exactly on a snapshot, and late.
    for offset in [1usize, 9, 16, 17, 47, 48, 99, 119] {
        let root = tmp(&format!("kill-{offset}"));
        {
            let mut daemon = open(&root);
            feed(&mut daemon, &lines[..offset]);
            // Dropped without a graceful snapshot: the crash.
        }
        let mut daemon = open(&root);
        feed(&mut daemon, &lines[offset..]);
        assert_eq!(
            daemon.stats(),
            ref_stats,
            "stats diverged at offset {offset}"
        );
        drop(daemon);
        let (journal, wal) = durable_files(&root);
        assert_eq!(journal, ref_journal, "journal diverged at offset {offset}");
        assert_eq!(wal, ref_wal, "wal diverged at offset {offset}");
    }
}

#[test]
fn torn_tails_in_both_files_are_repaired_on_resume() {
    let lines = request_lines(80);
    let (ref_journal, ref_wal, ref_stats) = reference_run(&lines);

    let offset = 33usize;
    let root = tmp("torn");
    {
        let mut daemon = open(&root);
        feed(&mut daemon, &lines[..offset]);
    }
    // A crash mid-write: half a frame on the WAL, half a line on the
    // journal. Recovery must drop both and re-earn the missing record.
    {
        use std::io::Write;
        let mut wal = std::fs::OpenOptions::new()
            .append(true)
            .open(root.join("gateway.wal"))
            .expect("wal opens");
        wal.write_all(&[42, 0, 0, 0, 7, 7, 7]).expect("torn frame");
        let mut journal = std::fs::OpenOptions::new()
            .append(true)
            .open(root.join("decisions.jsonl"))
            .expect("journal opens");
        journal
            .write_all(b"{\"t\":123.0,\"decis")
            .expect("torn line");
    }
    let mut daemon = open(&root);
    feed(&mut daemon, &lines[offset..]);
    assert_eq!(daemon.stats(), ref_stats);
    drop(daemon);
    let (journal, wal) = durable_files(&root);
    assert_eq!(journal, ref_journal);
    assert_eq!(wal, ref_wal);
}

#[test]
fn double_crash_during_recovery_window_still_converges() {
    let lines = request_lines(100);
    let (ref_journal, ref_wal, ref_stats) = reference_run(&lines);

    // Crash, resume briefly, crash again before the next snapshot.
    let root = tmp("double");
    {
        let mut daemon = open(&root);
        feed(&mut daemon, &lines[..40]);
    }
    {
        let mut daemon = open(&root);
        feed(&mut daemon, &lines[40..45]);
    }
    let mut daemon = open(&root);
    feed(&mut daemon, &lines[45..]);
    assert_eq!(daemon.stats(), ref_stats);
    drop(daemon);
    let (journal, wal) = durable_files(&root);
    assert_eq!(journal, ref_journal);
    assert_eq!(wal, ref_wal);
}

/// Kill the daemon so that the WAL's tail lands *inside* a
/// group-committed frame run: batched feeding appends many frames with
/// one write, and a crash can cut that write at any byte. Recovery must
/// keep the run's clean frame prefix, drop the torn frame, and re-earn
/// the lost records on re-feed — converging byte-identically to the
/// unbatched reference.
#[test]
fn torn_tail_inside_a_group_commit_run_recovers_bit_identically() {
    let lines = request_lines(120);
    let (ref_journal, ref_wal, ref_stats) = reference_run(&lines);
    let requests: Vec<Request> = lines
        .iter()
        .map(|l| {
            elasticflow_serve::parse_request(l)
                .expect("line parses")
                .expect("line is a request")
        })
        .collect();

    // Cut depths chosen to land mid-frame at varying distances into the
    // final batch's frame run (records are ~170 framed bytes). Chunks
    // of 56 put the last snapshot at submission 112, so the cuts only
    // ever reach the final 8-record run — a run no snapshot covers,
    // exactly the window a real crash can tear.
    for cut_back in [5usize, 200, 700] {
        let root = tmp(&format!("midbatch-{cut_back}"));
        {
            let mut daemon = open(&root);
            let mut responses = Vec::new();
            for chunk in requests.chunks(56) {
                responses.clear();
                daemon.handle_batch(chunk, &mut responses);
            }
            // Dropped without a graceful snapshot: the crash.
        }
        let wal_path = root.join("gateway.wal");
        let bytes = std::fs::read(&wal_path).expect("wal exists");
        assert!(bytes.len() > cut_back);
        std::fs::write(&wal_path, &bytes[..bytes.len() - cut_back]).expect("wal cut");
        {
            use std::io::Write;
            let mut journal = std::fs::OpenOptions::new()
                .append(true)
                .open(root.join("decisions.jsonl"))
                .expect("journal opens");
            journal
                .write_all(b"{\"t\":999.0,\"deci")
                .expect("torn line");
        }

        let mut daemon = open(&root);
        let survived = usize::try_from(daemon.wal_records()).expect("fits");
        assert!(
            survived < lines.len(),
            "the cut must have cost at least one record (cut {cut_back})"
        );
        feed(&mut daemon, &lines[survived..]);
        assert_eq!(
            daemon.stats(),
            ref_stats,
            "stats diverged at cut {cut_back}"
        );
        drop(daemon);
        let (journal, wal) = durable_files(&root);
        assert_eq!(journal, ref_journal, "journal diverged at cut {cut_back}");
        assert_eq!(wal, ref_wal, "wal diverged at cut {cut_back}");
    }
}

/// Crash the *real binary* mid-stream with `--die-after`, then resume
/// it and re-feed the entire stream: already-logged ids are rejected
/// without effect, the rest are served, and the journal converges to
/// the uninterrupted binary run's bytes.
#[cfg(unix)]
#[test]
fn binary_die_after_crash_then_resume_is_bit_identical() {
    use std::io::Write;
    use std::process::{Command, Stdio};

    let lines = request_lines(150);
    let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
    let binary = env!("CARGO_BIN_EXE_elasticflow-serve");
    let run = |dir: &Path, extra: &[&str], stdin_text: &str| {
        let mut child = Command::new(binary)
            .arg("--state-dir")
            .arg(dir)
            .args([
                "--servers",
                "2",
                "--gpus-per-server",
                "8",
                "--snapshot-every",
                "16",
                "--latency-clock",
                "tick",
            ])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("binary spawns");
        if let Some(mut stdin) = child.stdin.take() {
            // The child may exit (crash) before consuming everything;
            // a broken pipe here is part of the scenario.
            let _ = stdin.write_all(stdin_text.as_bytes());
        }
        child.wait().expect("binary exits")
    };

    let ref_dir = tmp("bin-reference");
    let status = run(&ref_dir, &[], &input);
    assert!(status.success(), "reference run failed: {status:?}");

    let crash_dir = tmp("bin-crash");
    let status = run(&crash_dir, &["--die-after", "60"], &input);
    assert_eq!(status.code(), Some(17), "--die-after must hard-exit 17");

    let status = run(&crash_dir, &["--resume"], &input);
    assert!(status.success(), "resume run failed: {status:?}");

    let (ref_journal, ref_wal) = durable_files(&ref_dir);
    let (journal, wal) = durable_files(&crash_dir);
    assert_eq!(journal, ref_journal, "binary journals diverged");
    assert_eq!(wal, ref_wal, "binary WALs diverged");
}

/// The batched drain loop under the same crash drill: the binary runs
/// with `--batch 64 --fsync batch`, dies mid-stream, and resumes with a
/// full idempotent re-feed. The durable files must converge to the
/// *unbatched* reference run's bytes — batch boundaries and fsync
/// cadence are runtime artifacts that leave no trace in either log.
#[cfg(unix)]
#[test]
fn binary_batched_crash_then_resume_matches_the_unbatched_reference() {
    use std::io::Write;
    use std::process::{Command, Stdio};

    let lines = request_lines(150);
    let input: String = lines.iter().map(|l| format!("{l}\n")).collect();
    let binary = env!("CARGO_BIN_EXE_elasticflow-serve");
    let run = |dir: &Path, extra: &[&str], stdin_text: &str| {
        let mut child = Command::new(binary)
            .arg("--state-dir")
            .arg(dir)
            .args([
                "--servers",
                "2",
                "--gpus-per-server",
                "8",
                "--snapshot-every",
                "16",
                "--latency-clock",
                "tick",
            ])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("binary spawns");
        if let Some(mut stdin) = child.stdin.take() {
            let _ = stdin.write_all(stdin_text.as_bytes());
        }
        child.wait().expect("binary exits")
    };

    let ref_dir = tmp("bin-batch-reference");
    let status = run(&ref_dir, &[], &input);
    assert!(status.success(), "reference run failed: {status:?}");

    let crash_dir = tmp("bin-batch-crash");
    let status = run(
        &crash_dir,
        &["--batch", "64", "--fsync", "batch", "--die-after", "60"],
        &input,
    );
    assert_eq!(status.code(), Some(17), "--die-after must hard-exit 17");

    let status = run(&crash_dir, &["--resume", "--batch", "64"], &input);
    assert!(status.success(), "resume run failed: {status:?}");

    let (ref_journal, ref_wal) = durable_files(&ref_dir);
    let (journal, wal) = durable_files(&crash_dir);
    assert_eq!(journal, ref_journal, "batched binary journal diverged");
    assert_eq!(wal, ref_wal, "batched binary WAL diverged");
}
