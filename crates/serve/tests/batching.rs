//! Property: batching is invisible in the durable record.
//!
//! For an arbitrary arrival stream (mixed deadline/best-effort work,
//! duplicate ids, interleaved withdrawals) chopped by an arbitrary
//! batch-size schedule, the batched daemon must produce the same
//! responses and *byte-identical* `decisions.jsonl` and `gateway.wal`
//! files as a daemon fed the stream one request at a time. Batch
//! boundaries are a runtime artifact: they change how many syscalls the
//! run takes, never which bytes it writes.

use std::path::{Path, PathBuf};

use elasticflow_perfmodel::DnnModel;
use elasticflow_serve::{
    gateway_registry, Daemon, DaemonConfig, FsyncPolicy, GatewayConfig, JobSubmission, Request,
    Response,
};
use elasticflow_telemetry::TickClock;
use proptest::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ef-batching-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn daemon_config(fsync: FsyncPolicy) -> DaemonConfig {
    DaemonConfig {
        gateway: GatewayConfig {
            servers: 1,
            gpus_per_server: 8,
            slot_seconds: 60.0,
        },
        // A small cadence so the schedule straddles snapshot boundaries.
        snapshot_every: 7,
        fsync,
    }
}

fn open(root: &Path, fsync: FsyncPolicy) -> Daemon {
    let (daemon, _resumption) = Daemon::open(
        root,
        daemon_config(fsync),
        Box::new(TickClock::new(500)),
        gateway_registry(),
    )
    .expect("daemon opens");
    daemon
}

fn durable_files(root: &Path) -> (Vec<u8>, Vec<u8>) {
    let journal = std::fs::read(root.join("decisions.jsonl")).expect("journal exists");
    let wal = std::fs::read(root.join("gateway.wal")).expect("wal exists");
    (journal, wal)
}

/// One abstract stream event, lowered to a request with monotone
/// arrival times during materialization.
#[derive(Debug, Clone)]
enum Event {
    /// `(id_slot, gap_seconds, deadline_window)` — `None` window means
    /// best-effort. The id slot is taken modulo a small range so
    /// duplicates occur.
    Submit(u64, f64, Option<f64>),
    /// Withdraw the id slot (may or may not name a committed job).
    Withdraw(u64),
}

fn events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        prop_oneof![
            8 => (0u64..48, 0.0f64..90.0, 600.0f64..5_400.0)
                .prop_map(|(id, gap, window)| Event::Submit(id, gap, Some(window))),
            2 => (0u64..48, 0.0f64..90.0)
                .prop_map(|(id, gap)| Event::Submit(id, gap, None)),
            1 => (0u64..48).prop_map(Event::Withdraw),
        ],
        1..60,
    )
}

fn schedule() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..9, 1..40)
}

fn materialize(events: &[Event]) -> Vec<Request> {
    let mut t = 0.0f64;
    events
        .iter()
        .map(|event| match event {
            Event::Submit(id, gap, window) => {
                t += gap;
                Request::Submit {
                    job: JobSubmission {
                        id: *id,
                        model: DnnModel::ResNet50,
                        global_batch: 128,
                        iterations: 4_000.0,
                        arrival_seconds: t,
                        deadline_seconds: window.map(|w| t + w),
                    },
                }
            }
            Event::Withdraw(id) => Request::Withdraw {
                job: *id,
                at_seconds: t,
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core byte-identity property, across fsync policies (the
    /// policy affects durability timing only, never contents).
    #[test]
    fn arbitrary_batching_is_byte_identical_to_sequential(
        events in events(),
        chunks in schedule(),
        fsync_pick in 0usize..4,
    ) {
        let requests = materialize(&events);
        let fsync = [
            FsyncPolicy::Never,
            FsyncPolicy::PerRecord,
            FsyncPolicy::PerBatch,
            FsyncPolicy::Interval(3),
        ][fsync_pick];

        let seq_root = tmp("seq");
        let mut sequential = open(&seq_root, FsyncPolicy::Never);
        let expected: Vec<Response> = requests
            .iter()
            .map(|r| sequential.handle_request(r))
            .collect();
        let seq_stats = sequential.stats();
        drop(sequential);
        let (seq_journal, seq_wal) = durable_files(&seq_root);

        let batch_root = tmp("batched");
        let mut batched = open(&batch_root, fsync);
        let mut got: Vec<Response> = Vec::new();
        let mut cursor = 0usize;
        let mut pick = 0usize;
        while cursor < requests.len() {
            let take = chunks[pick % chunks.len()].min(requests.len() - cursor);
            pick += 1;
            batched.handle_batch(&requests[cursor..cursor + take], &mut got);
            cursor += take;
        }
        prop_assert_eq!(&got, &expected, "responses diverged");
        prop_assert_eq!(batched.stats(), seq_stats, "stats diverged");
        drop(batched);
        let (journal, wal) = durable_files(&batch_root);
        prop_assert_eq!(journal, seq_journal, "journal bytes diverged");
        prop_assert_eq!(wal, seq_wal, "wal bytes diverged");
    }
}
